//! Port-to-destination routing policies.
//!
//! The abstract topology's edges become routes in the actor graph. Each
//! logical output port of an actor carries one [`Route`]; the engine
//! resolves it to a concrete destination per item:
//!
//! * [`Route::Unicast`] — a plain stream edge;
//! * [`Route::Probabilistic`] — simulates the measured routing
//!   probabilities of §3.1 (an item goes to one destination, drawn from the
//!   edge distribution);
//! * [`Route::RoundRobin`] — the emitter policy for replicated *stateless*
//!   operators ("items are distributed in a circular manner", §4.2);
//! * [`Route::KeyMap`] — the emitter policy for replicated
//!   *partitioned-stateful* operators: key → replica, from the
//!   key-partitioning assignment of Algorithm 2.

use crate::rng::XorShift64;
use crate::ActorId;
use spinstreams_core::Tuple;

/// Routing policy for one logical output port.
#[derive(Debug, Clone)]
pub enum Route {
    /// Every item goes to the same destination.
    Unicast(ActorId),
    /// Each item goes to one destination drawn from a fixed distribution
    /// (application-semantics simulation of edge probabilities).
    Probabilistic {
        /// Destinations and their probabilities (must sum to ~1).
        choices: Vec<(ActorId, f64)>,
    },
    /// Items are spread over the destinations in a circular manner
    /// (stateless-fission emitter).
    RoundRobin(Vec<ActorId>),
    /// Key-based dispatch: `destinations[key_map[key % key_map.len()]]`
    /// (partitioned-stateful-fission emitter).
    KeyMap {
        /// Replica index per key (from `KeyAssignment::owner`).
        key_map: Vec<usize>,
        /// One destination per replica.
        destinations: Vec<ActorId>,
    },
}

impl Route {
    /// All destinations this route can ever deliver to (used for wiring and
    /// EOS propagation), without allocating.
    pub fn destinations_iter(&self) -> impl Iterator<Item = ActorId> + '_ {
        // One slot per variant; exactly one is Some.
        let (single, pairs, list) = match self {
            Route::Unicast(d) => (Some(*d), None, None),
            Route::Probabilistic { choices } => (None, Some(choices.as_slice()), None),
            Route::RoundRobin(ds) => (None, None, Some(ds.as_slice())),
            Route::KeyMap { destinations, .. } => (None, None, Some(destinations.as_slice())),
        };
        single.into_iter().chain(
            pairs
                .into_iter()
                .flat_map(|cs| cs.iter().map(|(d, _)| *d))
                .chain(list.into_iter().flat_map(|ds| ds.iter().copied())),
        )
    }

    /// All destinations this route can ever deliver to, collected.
    ///
    /// Prefer [`Route::destinations_iter`] on hot paths; this allocates a
    /// fresh `Vec` per call.
    pub fn destinations(&self) -> Vec<ActorId> {
        self.destinations_iter().collect()
    }
}

/// Per-actor runtime state resolving routes to destinations.
#[derive(Debug)]
pub(crate) struct RouteState {
    route: Route,
    rr_next: usize,
    /// Cumulative distribution for `Probabilistic`, accumulated
    /// left-to-right exactly like `XorShift64::sample_discrete` so a binary
    /// search lands on the same index the linear scan would (bit-identical
    /// float sums, same `u < cum` comparison).
    cum: Vec<f64>,
}

impl RouteState {
    pub(crate) fn new(route: Route) -> Self {
        let cum = match &route {
            Route::Probabilistic { choices } => {
                let mut acc = 0.0;
                choices
                    .iter()
                    .map(|(_, p)| {
                        acc += p;
                        acc
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        RouteState {
            route,
            rr_next: 0,
            cum,
        }
    }

    /// Picks the destination for `item`.
    pub(crate) fn pick(&mut self, item: &Tuple, rng: &mut XorShift64) -> ActorId {
        match &self.route {
            Route::Unicast(d) => *d,
            Route::Probabilistic { choices } => {
                let u = rng.next_f64();
                // First index with `u < cum[idx]`; the last bucket absorbs
                // any floating-point slack below 1.0, matching the linear
                // scan's fallback.
                let idx = self.cum.partition_point(|&c| c <= u).min(choices.len() - 1);
                choices[idx].0
            }
            Route::RoundRobin(ds) => {
                let d = ds[self.rr_next % ds.len()];
                self.rr_next = (self.rr_next + 1) % ds.len();
                d
            }
            Route::KeyMap {
                key_map,
                destinations,
            } => {
                let k = (item.key as usize) % key_map.len();
                destinations[key_map[k]]
            }
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn route(&self) -> &Route {
        &self.route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(key: u64) -> Tuple {
        Tuple::splat(key, 0, 0.0)
    }

    #[test]
    fn unicast_always_same() {
        let mut s = RouteState::new(Route::Unicast(ActorId(3)));
        let mut rng = XorShift64::new(1);
        for _ in 0..10 {
            assert_eq!(s.pick(&tuple(0), &mut rng), ActorId(3));
        }
        assert_eq!(s.route().destinations(), vec![ActorId(3)]);
    }

    #[test]
    fn round_robin_cycles() {
        let ds = vec![ActorId(1), ActorId(2), ActorId(3)];
        let mut s = RouteState::new(Route::RoundRobin(ds.clone()));
        let mut rng = XorShift64::new(1);
        let picks: Vec<_> = (0..6).map(|_| s.pick(&tuple(0), &mut rng)).collect();
        assert_eq!(
            picks,
            vec![
                ActorId(1),
                ActorId(2),
                ActorId(3),
                ActorId(1),
                ActorId(2),
                ActorId(3)
            ]
        );
    }

    #[test]
    fn probabilistic_respects_distribution() {
        let mut s = RouteState::new(Route::Probabilistic {
            choices: vec![(ActorId(0), 0.25), (ActorId(1), 0.75)],
        });
        let mut rng = XorShift64::new(99);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.pick(&tuple(0), &mut rng) == ActorId(1))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn key_map_is_deterministic_per_key() {
        let mut s = RouteState::new(Route::KeyMap {
            key_map: vec![0, 1, 1, 0],
            destinations: vec![ActorId(10), ActorId(11)],
        });
        let mut rng = XorShift64::new(1);
        assert_eq!(s.pick(&tuple(0), &mut rng), ActorId(10));
        assert_eq!(s.pick(&tuple(1), &mut rng), ActorId(11));
        assert_eq!(s.pick(&tuple(2), &mut rng), ActorId(11));
        assert_eq!(s.pick(&tuple(3), &mut rng), ActorId(10));
        // Keys beyond the map wrap around.
        assert_eq!(s.pick(&tuple(4), &mut rng), ActorId(10));
        // Same key always lands on the same replica.
        for _ in 0..10 {
            assert_eq!(s.pick(&tuple(2), &mut rng), ActorId(11));
        }
    }

    #[test]
    fn cdf_binary_search_matches_linear_scan_exactly() {
        // Awkward probabilities that don't sum to exactly 1.0 in floating
        // point: the binary-search pick must agree with
        // `sample_discrete`'s linear scan on every draw.
        let probs = vec![0.1, 0.2, 0.3, 0.15, 0.25];
        let choices: Vec<(ActorId, f64)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (ActorId(i), p))
            .collect();
        let mut s = RouteState::new(Route::Probabilistic { choices });
        let mut rng_a = XorShift64::new(0xFEED);
        let mut rng_b = XorShift64::new(0xFEED);
        for _ in 0..50_000 {
            let picked = s.pick(&tuple(0), &mut rng_a);
            let expect = rng_b.sample_discrete(&probs);
            assert_eq!(picked, ActorId(expect));
        }
    }

    #[test]
    fn destinations_iter_matches_destinations() {
        let routes = vec![
            Route::Unicast(ActorId(3)),
            Route::Probabilistic {
                choices: vec![(ActorId(4), 0.5), (ActorId(5), 0.5)],
            },
            Route::RoundRobin(vec![ActorId(1), ActorId(2)]),
            Route::KeyMap {
                key_map: vec![0, 1],
                destinations: vec![ActorId(7), ActorId(8)],
            },
        ];
        for r in &routes {
            assert_eq!(r.destinations_iter().collect::<Vec<_>>(), r.destinations());
        }
    }

    #[test]
    fn destinations_enumerates_all() {
        let r = Route::Probabilistic {
            choices: vec![(ActorId(4), 0.5), (ActorId(5), 0.5)],
        };
        assert_eq!(r.destinations(), vec![ActorId(4), ActorId(5)]);
        let r = Route::KeyMap {
            key_map: vec![0, 1],
            destinations: vec![ActorId(7), ActorId(8)],
        };
        assert_eq!(r.destinations(), vec![ActorId(7), ActorId(8)]);
    }
}
