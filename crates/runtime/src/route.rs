//! Port-to-destination routing policies.
//!
//! The abstract topology's edges become routes in the actor graph. Each
//! logical output port of an actor carries one [`Route`]; the engine
//! resolves it to a concrete destination per item:
//!
//! * [`Route::Unicast`] — a plain stream edge;
//! * [`Route::Probabilistic`] — simulates the measured routing
//!   probabilities of §3.1 (an item goes to one destination, drawn from the
//!   edge distribution);
//! * [`Route::RoundRobin`] — the emitter policy for replicated *stateless*
//!   operators ("items are distributed in a circular manner", §4.2);
//! * [`Route::KeyMap`] — the emitter policy for replicated
//!   *partitioned-stateful* operators: key → replica, from the
//!   key-partitioning assignment of Algorithm 2.

use crate::rng::XorShift64;
use crate::ActorId;
use spinstreams_core::Tuple;

/// Routing policy for one logical output port.
#[derive(Debug, Clone)]
pub enum Route {
    /// Every item goes to the same destination.
    Unicast(ActorId),
    /// Each item goes to one destination drawn from a fixed distribution
    /// (application-semantics simulation of edge probabilities).
    Probabilistic {
        /// Destinations and their probabilities (must sum to ~1).
        choices: Vec<(ActorId, f64)>,
    },
    /// Items are spread over the destinations in a circular manner
    /// (stateless-fission emitter).
    RoundRobin(Vec<ActorId>),
    /// Key-based dispatch: `destinations[key_map[key % key_map.len()]]`
    /// (partitioned-stateful-fission emitter).
    KeyMap {
        /// Replica index per key (from `KeyAssignment::owner`).
        key_map: Vec<usize>,
        /// One destination per replica.
        destinations: Vec<ActorId>,
    },
}

impl Route {
    /// All destinations this route can ever deliver to (used for wiring and
    /// EOS propagation).
    pub fn destinations(&self) -> Vec<ActorId> {
        match self {
            Route::Unicast(d) => vec![*d],
            Route::Probabilistic { choices } => choices.iter().map(|(d, _)| *d).collect(),
            Route::RoundRobin(ds) => ds.clone(),
            Route::KeyMap { destinations, .. } => destinations.clone(),
        }
    }
}

/// Per-actor runtime state resolving routes to destinations.
#[derive(Debug)]
pub(crate) struct RouteState {
    route: Route,
    rr_next: usize,
    probs: Vec<f64>,
}

impl RouteState {
    pub(crate) fn new(route: Route) -> Self {
        let probs = match &route {
            Route::Probabilistic { choices } => choices.iter().map(|(_, p)| *p).collect(),
            _ => Vec::new(),
        };
        RouteState {
            route,
            rr_next: 0,
            probs,
        }
    }

    /// Picks the destination for `item`.
    pub(crate) fn pick(&mut self, item: &Tuple, rng: &mut XorShift64) -> ActorId {
        match &self.route {
            Route::Unicast(d) => *d,
            Route::Probabilistic { choices } => {
                let idx = rng.sample_discrete(&self.probs);
                choices[idx].0
            }
            Route::RoundRobin(ds) => {
                let d = ds[self.rr_next % ds.len()];
                self.rr_next = (self.rr_next + 1) % ds.len();
                d
            }
            Route::KeyMap {
                key_map,
                destinations,
            } => {
                let k = (item.key as usize) % key_map.len();
                destinations[key_map[k]]
            }
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn route(&self) -> &Route {
        &self.route
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(key: u64) -> Tuple {
        Tuple::splat(key, 0, 0.0)
    }

    #[test]
    fn unicast_always_same() {
        let mut s = RouteState::new(Route::Unicast(ActorId(3)));
        let mut rng = XorShift64::new(1);
        for _ in 0..10 {
            assert_eq!(s.pick(&tuple(0), &mut rng), ActorId(3));
        }
        assert_eq!(s.route().destinations(), vec![ActorId(3)]);
    }

    #[test]
    fn round_robin_cycles() {
        let ds = vec![ActorId(1), ActorId(2), ActorId(3)];
        let mut s = RouteState::new(Route::RoundRobin(ds.clone()));
        let mut rng = XorShift64::new(1);
        let picks: Vec<_> = (0..6).map(|_| s.pick(&tuple(0), &mut rng)).collect();
        assert_eq!(
            picks,
            vec![
                ActorId(1),
                ActorId(2),
                ActorId(3),
                ActorId(1),
                ActorId(2),
                ActorId(3)
            ]
        );
    }

    #[test]
    fn probabilistic_respects_distribution() {
        let mut s = RouteState::new(Route::Probabilistic {
            choices: vec![(ActorId(0), 0.25), (ActorId(1), 0.75)],
        });
        let mut rng = XorShift64::new(99);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| s.pick(&tuple(0), &mut rng) == ActorId(1))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn key_map_is_deterministic_per_key() {
        let mut s = RouteState::new(Route::KeyMap {
            key_map: vec![0, 1, 1, 0],
            destinations: vec![ActorId(10), ActorId(11)],
        });
        let mut rng = XorShift64::new(1);
        assert_eq!(s.pick(&tuple(0), &mut rng), ActorId(10));
        assert_eq!(s.pick(&tuple(1), &mut rng), ActorId(11));
        assert_eq!(s.pick(&tuple(2), &mut rng), ActorId(11));
        assert_eq!(s.pick(&tuple(3), &mut rng), ActorId(10));
        // Keys beyond the map wrap around.
        assert_eq!(s.pick(&tuple(4), &mut rng), ActorId(10));
        // Same key always lands on the same replica.
        for _ in 0..10 {
            assert_eq!(s.pick(&tuple(2), &mut rng), ActorId(11));
        }
    }

    #[test]
    fn destinations_enumerates_all() {
        let r = Route::Probabilistic {
            choices: vec![(ActorId(4), 0.5), (ActorId(5), 0.5)],
        };
        assert_eq!(r.destinations(), vec![ActorId(4), ActorId(5)]);
        let r = Route::KeyMap {
            key_map: vec![0, 1],
            destinations: vec![ActorId(7), ActorId(8)],
        };
        assert_eq!(r.destinations(), vec![ActorId(7), ActorId(8)]);
    }
}
