//! Epoch-aligned checkpointing: snapshots, coordinator, replay buffers.
//!
//! The engine's recovery path (PR 1) restarted a failed operator *empty* —
//! correct for stateless operators, silently wrong for windowed and
//! partitioned-stateful ones. This module supplies the three pieces an
//! epoch-aligned (Chandy–Lamport-style) checkpoint layer needs:
//!
//! * [`StateSnapshot`] — a compact byte-buffer encoding of operator state,
//!   written by [`StreamOperator::snapshot`](crate::StreamOperator::snapshot)
//!   and consumed by
//!   [`StreamOperator::restore`](crate::StreamOperator::restore). The
//!   writer/reader helpers keep encodings allocation-light and make the
//!   snapshot *size* (a telemetry quantity) fall out naturally.
//! * [`CheckpointCoordinator`] — the shared acknowledgment ledger. Sources
//!   ack epoch *N* when they inject its marker; every worker (sinks
//!   included) acks when its barrier alignment for *N* completes. Epoch
//!   *N* is **complete** only when every actor has acked *N* or later —
//!   the minimum over the ledger.
//! * [`ReplayBuffer`] — a bounded per-actor log of post-snapshot input
//!   tuples keyed by epoch. On `Restart` the supervisor restores the
//!   operator from its last local snapshot and replays this buffer through
//!   it (outputs suppressed — they were already delivered), which rebuilds
//!   the state the unfaulted run would have had. Overflow is recorded, not
//!   fatal: recovery degrades to the old reset-to-empty behavior.

use spinstreams_core::Tuple;
use std::sync::atomic::{AtomicU64, Ordering};

/// Epoch number meaning "no epoch": acks start at 1.
pub const NO_EPOCH: u64 = 0;

/// A serialized operator state, produced at an epoch barrier.
///
/// The encoding is operator-private; the runtime only moves the bytes and
/// reports their size. Helpers cover the primitive shapes the library
/// operators need (u64 counters, f64 attributes, length-prefixed
/// sequences).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateSnapshot {
    bytes: Vec<u8>,
}

impl StateSnapshot {
    /// Creates an empty snapshot (the stateless-operator encoding).
    pub fn new() -> Self {
        Self::default()
    }

    /// Size of the encoded state in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the snapshot carries no state.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Appends a `u64` (little-endian).
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` (little-endian IEEE 754 bits).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Appends a whole tuple (key, seq, src_ns, then every attribute).
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.push_u64(t.key);
        self.push_u64(t.seq);
        self.push_u64(t.src_ns);
        for v in &t.values {
            self.push_f64(*v);
        }
    }

    /// Starts reading the snapshot from the beginning.
    pub fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader {
            bytes: &self.bytes,
            pos: 0,
        }
    }
}

/// Cursor over a [`StateSnapshot`]'s bytes.
///
/// Reads return `None` past the end (a malformed or truncated snapshot
/// makes [`StreamOperator::restore`](crate::StreamOperator::restore) fail
/// gracefully instead of panicking mid-recovery).
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl SnapshotReader<'_> {
    /// Reads the next `u64`, or `None` if the snapshot is exhausted.
    pub fn read_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }

    /// Reads the next `f64`.
    pub fn read_f64(&mut self) -> Option<f64> {
        self.read_u64().map(f64::from_bits)
    }

    /// Reads a tuple written by [`StateSnapshot::push_tuple`].
    pub fn read_tuple(&mut self) -> Option<Tuple> {
        let mut t = Tuple {
            key: self.read_u64()?,
            seq: self.read_u64()?,
            src_ns: self.read_u64()?,
            ..Tuple::default()
        };
        for v in &mut t.values {
            *v = self.read_f64()?;
        }
        Some(t)
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

/// The shared checkpoint acknowledgment ledger.
///
/// One slot per actor (sources, workers and sinks alike). Acks are
/// monotonic per actor; the globally *complete* epoch is the minimum over
/// all slots — exactly the "every actor and sink has acked" rule.
#[derive(Debug)]
pub struct CheckpointCoordinator {
    acked: Vec<AtomicU64>,
}

impl CheckpointCoordinator {
    /// Creates a ledger for `num_actors` actors, all at [`NO_EPOCH`].
    pub fn new(num_actors: usize) -> Self {
        CheckpointCoordinator {
            acked: (0..num_actors).map(|_| AtomicU64::new(NO_EPOCH)).collect(),
        }
    }

    /// Records that actor `actor` finished epoch `epoch` (monotonic: lower
    /// or repeated epochs are ignored).
    pub fn ack(&self, actor: usize, epoch: u64) {
        if let Some(slot) = self.acked.get(actor) {
            slot.fetch_max(epoch, Ordering::AcqRel);
        }
    }

    /// The epoch this actor last acked, or `None` before its first ack.
    pub fn acked_by(&self, actor: usize) -> Option<u64> {
        let e = self.acked.get(actor)?.load(Ordering::Acquire);
        (e != NO_EPOCH).then_some(e)
    }

    /// The last globally complete epoch: the highest `N` every actor has
    /// acked, or `None` if any actor has not completed an epoch yet.
    pub fn last_complete(&self) -> Option<u64> {
        let min = self.acked.iter().map(|a| a.load(Ordering::Acquire)).min()?;
        (min != NO_EPOCH).then_some(min)
    }
}

/// A bounded log of input tuples keyed by the epoch they arrived in.
///
/// The owning actor pushes every data tuple *before* processing it; on a
/// completed snapshot for epoch `N` the prefix with `epoch <= N` is
/// trimmed (that state is in the snapshot). What remains is exactly the
/// input the operator consumed since its last snapshot — the replay set.
#[derive(Debug)]
pub struct ReplayBuffer {
    entries: Vec<(u64, Tuple)>,
    capacity: usize,
    overflowed: bool,
    overflows: u64,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            entries: Vec::new(),
            capacity,
            overflowed: false,
            overflows: 0,
        }
    }

    /// Logs one input tuple under `epoch`. On overflow the buffer is
    /// invalidated (cleared) until the next completed snapshot re-arms it.
    pub fn push(&mut self, epoch: u64, tuple: Tuple) {
        if self.overflowed {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.clear();
            self.overflowed = true;
            self.overflows += 1;
            return;
        }
        self.entries.push((epoch, tuple));
    }

    /// Drops entries from epochs at or before `epoch` (their effect is in
    /// the snapshot) and re-arms an overflowed buffer: from this barrier
    /// on, the log is consistent with the snapshot again.
    pub fn trim_through(&mut self, epoch: u64) {
        self.entries.retain(|(e, _)| *e > epoch);
        self.overflowed = false;
    }

    /// Removes and returns the most recently pushed tuple (used by the
    /// `Resume` directive, whose semantics drop the poisoned item).
    pub fn pop_last(&mut self) -> Option<(u64, Tuple)> {
        self.entries.pop()
    }

    /// True if the buffer is currently valid for replay (no overflow since
    /// the last snapshot).
    pub fn is_valid(&self) -> bool {
        !self.overflowed
    }

    /// Number of times the buffer overflowed over the run.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// The buffered `(epoch, tuple)` entries, oldest first.
    pub fn entries(&self) -> &[(u64, Tuple)] {
        &self.entries
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_primitives_and_tuples() {
        let mut s = StateSnapshot::new();
        s.push_u64(7);
        s.push_f64(2.5);
        let t = Tuple::splat(3, 11, 1.25).stamped(99);
        s.push_tuple(&t);
        assert_eq!(s.len(), 8 + 8 + (3 + t.values.len()) * 8);
        let mut r = s.reader();
        assert_eq!(r.read_u64(), Some(7));
        assert_eq!(r.read_f64(), Some(2.5));
        assert_eq!(r.read_tuple(), Some(t));
        assert!(r.is_exhausted());
        assert_eq!(r.read_u64(), None, "reads past the end fail gracefully");
    }

    #[test]
    fn truncated_snapshot_reads_none_not_panic() {
        let mut s = StateSnapshot::new();
        s.push_u64(1);
        let mut r = s.reader();
        assert!(r.read_tuple().is_none());
    }

    #[test]
    fn coordinator_complete_epoch_is_the_minimum() {
        let c = CheckpointCoordinator::new(3);
        assert_eq!(c.last_complete(), None);
        c.ack(0, 2);
        c.ack(1, 1);
        assert_eq!(c.last_complete(), None, "actor 2 never acked");
        c.ack(2, 3);
        assert_eq!(c.last_complete(), Some(1));
        c.ack(1, 2);
        assert_eq!(c.last_complete(), Some(2));
        // Acks are monotonic: a stale ack cannot regress the ledger.
        c.ack(1, 1);
        assert_eq!(c.acked_by(1), Some(2));
        assert_eq!(c.last_complete(), Some(2));
        assert_eq!(c.acked_by(99), None, "out-of-range actor is None");
    }

    #[test]
    fn replay_buffer_trims_and_overflows() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..3u64 {
            b.push(1, Tuple::splat(0, i, 0.0));
        }
        assert_eq!(b.len(), 3);
        assert!(b.is_valid());
        // Fourth push overflows: the log is invalidated, not partially kept.
        b.push(2, Tuple::splat(0, 3, 0.0));
        assert!(!b.is_valid());
        assert!(b.is_empty());
        assert_eq!(b.overflows(), 1);
        // While overflowed, pushes are ignored.
        b.push(2, Tuple::splat(0, 4, 0.0));
        assert!(b.is_empty());
        // The next barrier re-arms it.
        b.trim_through(2);
        assert!(b.is_valid());
        b.push(3, Tuple::splat(0, 5, 0.0));
        b.push(3, Tuple::splat(0, 6, 0.0));
        b.push(4, Tuple::splat(0, 7, 0.0));
        b.trim_through(3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.entries()[0].0, 4);
        assert_eq!(b.pop_last().map(|(_, t)| t.seq), Some(7));
        assert!(b.is_empty());
    }
}
