//! Live telemetry: sampled snapshots, latency histograms, trace events.
//!
//! The run report answers "what happened" only *after* a run completes;
//! §5.2's validation of Algorithm 1 (and any future online
//! reconfiguration, cf. Madsen & Zhou) needs to see utilization
//! transients, queue growth and rate drift *while* a topology executes.
//! This module provides the measurement substrate:
//!
//! * [`TelemetrySnapshot`] — a timestamped sample of every actor's
//!   counters and queue depth, with **rolling** (per-interval)
//!   arrival/departure rates and utilization rather than whole-run
//!   averages. Snapshots are retained in a capacity-bounded ring and
//!   streamed to an optional subscriber as they are taken.
//! * [`LatencyHistogram`] — a log-bucketed (HDR-style) histogram of
//!   per-tuple end-to-end latency, recorded at the sinks from the source
//!   timestamps carried in [`Tuple::src_ns`](spinstreams_core::Tuple),
//!   with p50/p95/p99/max extraction.
//! * [`TraceEvent`] / [`TraceLog`] — a structured, sequence-numbered,
//!   capacity-bounded stream of lifecycle events (actor started /
//!   panicked / restarted / backoff / blocked transition / dead letter),
//!   mirroring the [`DeadLetterLog`](crate::DeadLetterLog) design.
//!
//! The threaded engine samples from a background thread
//! ([`crate::run_with_telemetry`]); the discrete-event executor samples at
//! exact virtual-clock boundaries ([`crate::simulate_with_telemetry`]), so
//! simulated telemetry is deterministic given the seeds. When telemetry is
//! not requested the engine spawns no sampler, allocates no histograms and
//! touches only the per-actor atomic counters it always kept — the layer
//! costs nothing when disabled. Building the crate with
//! `--no-default-features` additionally compiles the sampler thread out
//! (the `telemetry` cargo feature), leaving only the final snapshot.

use crate::metrics::ActorMetrics;
use crate::supervision::DeadLetterReason;
use crate::ActorId;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A snapshot subscriber: called synchronously with each sample as it is
/// taken (see [`TelemetryConfig::on_snapshot`]).
pub type SnapshotCallback = Arc<dyn Fn(&TelemetrySnapshot) + Send + Sync>;

/// Configuration of the telemetry layer.
#[derive(Clone)]
pub struct TelemetryConfig {
    /// Sampling interval (wall-clock on the threaded engine, virtual time
    /// in the discrete-event executor).
    pub interval: Duration,
    /// Number of snapshots retained in the ring (older ones are evicted;
    /// a live subscriber still sees every snapshot).
    pub ring_capacity: usize,
    /// Number of individual [`TraceEvent`]s retained; totals stay exact
    /// past the cap.
    pub trace_capacity: usize,
    /// Called synchronously with every snapshot as it is taken — the hook
    /// exporters (JSON-lines files, live monitors) attach to.
    pub on_snapshot: Option<SnapshotCallback>,
    /// Causal span-tracing sample period: `0` disables span tracing
    /// (default); any other value is rounded up to a power of two `N`, and
    /// every tuple whose source sequence number is a multiple of `N`
    /// becomes a span anchor — each actor that drains it records a
    /// [`TraceEventKind::Span`] hop, yielding a sampled flight-recorder
    /// path through the graph. The power-of-two constraint keeps the
    /// per-tuple gate to one mask-and-compare on the hot path.
    pub span_sample: u64,
    /// Tenant label attached to every snapshot (and propagated into the
    /// JSON-lines / Prometheus exporters' per-actor records). `None` —
    /// the default, and the single-tenant norm — omits the label
    /// entirely. Multi-tenant runs default it to the tenant's name.
    pub tenant: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: Duration::from_millis(100),
            ring_capacity: 1024,
            trace_capacity: 4096,
            on_snapshot: None,
            span_sample: 0,
            tenant: None,
        }
    }
}

impl fmt::Debug for TelemetryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryConfig")
            .field("interval", &self.interval)
            .field("ring_capacity", &self.ring_capacity)
            .field("trace_capacity", &self.trace_capacity)
            .field("on_snapshot", &self.on_snapshot.as_ref().map(|_| "Fn(..)"))
            .field("span_sample", &self.span_sample)
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl TelemetryConfig {
    /// Sets the sampling interval (builder style).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Enables causal span tracing, sampling one tuple in `period`
    /// (rounded up to a power of two; 0 disables) as a span anchor
    /// (builder style).
    pub fn with_span_sample(mut self, period: u64) -> Self {
        self.span_sample = period;
        self
    }

    /// The span sampling mask: a tuple is traced iff
    /// `seq & mask == 0`. `None` when span tracing is disabled.
    pub(crate) fn span_mask(&self) -> Option<u64> {
        match self.span_sample {
            0 => None,
            n => Some(n.next_power_of_two() - 1),
        }
    }

    /// Sets the tenant label stamped on every snapshot (builder style).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the snapshot subscriber (builder style).
    pub fn with_on_snapshot(
        mut self,
        f: impl Fn(&TelemetrySnapshot) + Send + Sync + 'static,
    ) -> Self {
        self.on_snapshot = Some(Arc::new(f));
        self
    }
}

/// Number of log₂ buckets in a [`LatencyHistogram`]: bucket `i` counts
/// latencies with `floor(log2(ns)) == i`, covering 1 ns … ~584 years.
pub const LATENCY_BUCKETS: usize = 64;

/// A log-bucketed (HDR-style) latency histogram with atomic buckets.
///
/// Recording is wait-free (one `fetch_add` plus a `fetch_max`); quantile
/// extraction interpolates linearly inside the winning power-of-two
/// bucket, so the relative quantile error is bounded by the bucket width
/// (< 2× — ample for p50/p95/p99 over log-normal-ish latency spectra).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [(); LATENCY_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` identical latency observations in one update. The
    /// engine's sink path run-length-coalesces consecutive equal
    /// latencies (batch-granular stamps make them common) so a whole run
    /// costs four shared-atomic RMWs instead of `4 * n`.
    pub fn record_n(&self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = ns.max(1).ilog2() as usize;
        self.buckets[bucket].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(ns.saturating_mul(n), Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Extracts the approximate `q`-quantile (`0 < q <= 1`) in ns, or
    /// `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                // Interpolate within [2^i, 2^(i+1)) by rank.
                let lower = 1u64 << i;
                let width = lower; // bucket width == lower bound
                let frac = (target - cum) as f64 / n as f64;
                let est = lower as f64 + frac * width as f64;
                return Some((est as u64).min(self.max_ns.load(Ordering::Relaxed)));
            }
            cum += n;
        }
        Some(self.max_ns.load(Ordering::Relaxed))
    }

    /// Takes an immutable summary of the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        LatencySnapshot {
            count,
            mean_ns: self
                .sum_ns
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
            p50_ns: self.quantile(0.50).unwrap_or(0),
            p95_ns: self.quantile(0.95).unwrap_or(0),
            p99_ns: self.quantile(0.99).unwrap_or(0),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// Observations recorded so far.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: u64,
    /// Median latency (ns, interpolated).
    pub p50_ns: u64,
    /// 95th percentile latency (ns, interpolated).
    pub p95_ns: u64,
    /// 99th percentile latency (ns, interpolated).
    pub p99_ns: u64,
    /// Largest observed latency (ns, exact).
    pub max_ns: u64,
}

/// What happened, in a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEventKind {
    /// An actor's thread (or simulated server) began executing.
    ActorStarted,
    /// An actor drained its inputs and propagated end-of-stream.
    ActorFinished,
    /// A supervised operator invocation panicked.
    OperatorPanicked,
    /// The supervisor re-instantiated (or reset) the operator.
    OperatorRestarted,
    /// The supervisor slept in restart backoff for `ns` nanoseconds.
    Backoff {
        /// Backoff sleep duration.
        ns: u64,
    },
    /// The actor stopped processing and entered degraded mode.
    ActorStopped,
    /// A send completed only after blocking on a full mailbox for `ns`
    /// nanoseconds (a backpressure transition).
    Blocked {
        /// Time spent blocked before the send succeeded.
        ns: u64,
    },
    /// An item was recorded as undeliverable.
    DeadLetter {
        /// Why delivery failed.
        reason: DeadLetterReason,
    },
    /// An epoch checkpoint completed locally: a source injected the
    /// marker, or a worker finished barrier alignment and captured its
    /// snapshot (`bytes` = serialized state size; 0 for sources and
    /// stateless operators).
    CheckpointCompleted {
        /// The epoch number.
        epoch: u64,
        /// Serialized snapshot size in bytes.
        bytes: u64,
    },
    /// A restarted operator recovered its state: restored from the
    /// snapshot of `epoch` (0 = no snapshot yet) and replayed `replayed`
    /// logged tuples.
    Recovered {
        /// Epoch of the restored snapshot (0 before the first barrier).
        epoch: u64,
        /// Tuples replayed through the operator, outputs suppressed.
        replayed: u64,
    },
    /// One hop of a sampled flight-recorder span: a span-anchor tuple
    /// (selected by [`TelemetryConfig::span_sample`]) was drained by this
    /// actor. The event's `t_ns` is the batch-granular processing time;
    /// joining the hops of one `(tuple_seq, src_ns)` identity in trace
    /// order (see [`assemble_spans`]) yields the tuple's causal path and
    /// per-hop sojourn times through the graph.
    Span {
        /// The traced tuple's source sequence number (span identity).
        tuple_seq: u64,
        /// The tuple's source timestamp — hop zero of the span, and the
        /// disambiguator when several sources share sequence numbers.
        src_ns: u64,
    },
    /// A live reconfiguration route swap was applied by this actor: its
    /// output `port` now routes to `destinations` replica slots. Emitted
    /// at the epoch barrier the swap was gated on (`epoch` 0 when applied
    /// un-gated, i.e. with checkpointing off).
    Reconfigured {
        /// Barrier epoch the swap applied at (0 = ungated).
        epoch: u64,
        /// The swapped output port.
        port: usize,
        /// Destination count of the new route (the new active parallelism).
        destinations: u64,
        /// Keys paused for state handoff by this swap.
        moved_keys: u64,
    },
    /// One side of a key-state handoff executed on this actor: the old
    /// owner extracted and published the moving keys' state
    /// (`outbound = true`), or the new owner merged it
    /// (`outbound = false`).
    StateMigrated {
        /// The handoff id connecting the extract and merge events.
        handoff: u64,
        /// Serialized size of the moved state.
        bytes: u64,
        /// True on the extracting (old-owner) side.
        outbound: bool,
    },
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEventKind::ActorStarted => write!(f, "actor-started"),
            TraceEventKind::ActorFinished => write!(f, "actor-finished"),
            TraceEventKind::OperatorPanicked => write!(f, "operator-panicked"),
            TraceEventKind::OperatorRestarted => write!(f, "operator-restarted"),
            TraceEventKind::Backoff { .. } => write!(f, "backoff"),
            TraceEventKind::ActorStopped => write!(f, "actor-stopped"),
            TraceEventKind::Blocked { .. } => write!(f, "blocked"),
            TraceEventKind::DeadLetter { .. } => write!(f, "dead-letter"),
            TraceEventKind::CheckpointCompleted { .. } => write!(f, "checkpoint-completed"),
            TraceEventKind::Recovered { .. } => write!(f, "recovered"),
            TraceEventKind::Span { .. } => write!(f, "span"),
            TraceEventKind::Reconfigured { .. } => write!(f, "reconfigured"),
            TraceEventKind::StateMigrated { .. } => write!(f, "state-migrated"),
        }
    }
}

/// One structured lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (0-based, gap-free across all actors).
    pub seq: u64,
    /// Nanoseconds since run start (wall or virtual, per executor).
    pub t_ns: u64,
    /// The actor the event concerns.
    pub actor: ActorId,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Renders the event as one JSON object (used for JSON-lines export).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"type\":\"trace\",\"seq\":{},\"t_ns\":{},\"actor\":{},\"event\":\"{}\"",
            self.seq, self.t_ns, self.actor.0, self.kind
        );
        match self.kind {
            TraceEventKind::Backoff { ns } | TraceEventKind::Blocked { ns } => {
                let _ = write!(s, ",\"ns\":{ns}");
            }
            TraceEventKind::DeadLetter { reason } => {
                let _ = write!(s, ",\"reason\":\"{reason}\"");
            }
            TraceEventKind::CheckpointCompleted { epoch, bytes } => {
                let _ = write!(s, ",\"epoch\":{epoch},\"bytes\":{bytes}");
            }
            TraceEventKind::Recovered { epoch, replayed } => {
                let _ = write!(s, ",\"epoch\":{epoch},\"replayed\":{replayed}");
            }
            TraceEventKind::Span { tuple_seq, src_ns } => {
                let _ = write!(s, ",\"tuple_seq\":{tuple_seq},\"src_ns\":{src_ns}");
            }
            TraceEventKind::Reconfigured {
                epoch,
                port,
                destinations,
                moved_keys,
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"port\":{port},\"destinations\":{destinations},\"moved_keys\":{moved_keys}"
                );
            }
            TraceEventKind::StateMigrated {
                handoff,
                bytes,
                outbound,
            } => {
                let _ = write!(
                    s,
                    ",\"handoff\":{handoff},\"bytes\":{bytes},\"outbound\":{outbound}"
                );
            }
            _ => {}
        }
        s.push('}');
        s
    }
}

struct TraceInner {
    entries: Vec<TraceEvent>,
    capacity: usize,
}

/// A capacity-bounded, concurrently-writable log of [`TraceEvent`]s.
///
/// Like the [`DeadLetterLog`](crate::DeadLetterLog), the first `capacity`
/// events are kept verbatim and the rest only counted, so event storms
/// cannot exhaust memory while sequence numbers stay exact. Once the log
/// is full, [`record`](Self::record) degrades to one relaxed atomic
/// increment — a saturated pipeline emitting blocked/span events at
/// mailbox rates must not serialize its actor threads on this mutex.
pub struct TraceLog {
    inner: Mutex<TraceInner>,
    /// Events recorded so far, including any beyond capacity. Every
    /// record increments this and pushes iff the log is below capacity,
    /// so the retained entries are always the contiguous seq prefix.
    total: AtomicU64,
    /// Set once `entries` reaches `capacity`: lock-free early exit.
    full: AtomicBool,
}

impl fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceLog")
            .field("total", &self.total())
            .field("retained", &self.lock().entries.len())
            .finish()
    }
}

impl TraceLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            inner: Mutex::new(TraceInner {
                entries: Vec::new(),
                capacity,
            }),
            total: AtomicU64::new(0),
            full: AtomicBool::new(capacity == 0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one event, assigning it the next global sequence number.
    pub fn record(&self, t_ns: u64, actor: ActorId, kind: TraceEventKind) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if self.full.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.lock();
        if inner.entries.len() < inner.capacity {
            let seq = inner.entries.len() as u64;
            inner.entries.push(TraceEvent {
                seq,
                t_ns,
                actor,
                kind,
            });
            if inner.entries.len() == inner.capacity {
                self.full.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Total number of events recorded (including any beyond capacity).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Clones the retained events, in sequence order.
    pub fn entries(&self) -> Vec<TraceEvent> {
        self.lock().entries.clone()
    }
}

/// One actor's sample within a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ActorSample {
    /// The actor.
    pub id: ActorId,
    /// Diagnostic name from the actor graph.
    pub name: String,
    /// Cumulative items received.
    pub items_in: u64,
    /// Cumulative items emitted.
    pub items_out: u64,
    /// Mailbox depth at sampling time (`None` for sources — no mailbox).
    pub queue_depth: Option<usize>,
    /// Mailbox capacity (`None` for sources).
    pub queue_capacity: Option<usize>,
    /// Rolling arrival rate over the last interval (items/s).
    pub arrival_rate: f64,
    /// Rolling departure rate over the last interval (items/s).
    pub departure_rate: f64,
    /// Fraction of the last interval spent inside the operator.
    pub utilization: f64,
    /// Cumulative caught panics.
    pub panics: u64,
    /// Cumulative operator restarts.
    pub restarts: u64,
    /// Cumulative dead letters attributed to this actor.
    pub dead_letters: u64,
    /// Cumulative items dropped on send timeout.
    pub dropped: u64,
    /// Cumulative nanoseconds spent inside the operator (the numerator of
    /// the online service-time estimate `µ̂ = Δbusy_ns / Δitems_in`).
    pub busy_ns: u64,
    /// Cumulative nanoseconds this actor spent blocked sending downstream
    /// (backpressure it *suffered*).
    pub blocked_ns: u64,
    /// Cumulative nanoseconds upstream producers spent blocked pushing
    /// into this actor's mailbox (backpressure it *caused*; 0 for
    /// sources, which have no mailbox).
    pub inbox_stall_ns: u64,
    /// Cumulative checkpoint snapshots captured.
    pub snapshots: u64,
    /// Cumulative serialized snapshot bytes.
    pub snapshot_bytes: u64,
    /// Cumulative nanoseconds spent aligned-stalled on epoch barriers.
    pub align_stall_ns: u64,
    /// Cumulative state recoveries after restart.
    pub recoveries: u64,
    /// Cumulative tuples replayed during recoveries.
    pub replayed: u64,
    /// Cumulative replay-buffer overflows (degraded recoveries).
    pub replay_overflows: u64,
}

/// Per-sink latency summary within a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SinkLatency {
    /// The sink actor.
    pub actor: ActorId,
    /// The sink's diagnostic name.
    pub name: String,
    /// Cumulative latency summary.
    pub latency: LatencySnapshot,
}

/// One timestamped sample of the whole topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// 0-based snapshot index.
    pub tick: u64,
    /// Nanoseconds since run start (wall or virtual, per executor).
    pub t_ns: u64,
    /// Nanoseconds covered by the rolling window (time since the previous
    /// snapshot, or since run start for tick 0).
    pub interval_ns: u64,
    /// Per-actor samples, indexed by actor id.
    pub actors: Vec<ActorSample>,
    /// Per-sink end-to-end latency summaries.
    pub latencies: Vec<SinkLatency>,
    /// Total trace events recorded so far.
    pub trace_total: u64,
    /// Last epoch whose checkpoint completed on every actor (`None` when
    /// checkpointing is off or no epoch has completed yet).
    pub last_complete_epoch: Option<u64>,
    /// Tenant label (multi-tenant runs; `None` for solo runs without an
    /// explicit [`TelemetryConfig::tenant`]). Exporters attach it to every
    /// per-actor record so co-tenant streams stay distinguishable.
    pub tenant: Option<String>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TelemetrySnapshot {
    /// Renders the snapshot as one JSON object (one JSON-lines record).
    pub fn to_json(&self) -> String {
        self.to_json_with("")
    }

    /// Renders the snapshot as JSON, splicing `extra_fields` (raw JSON of
    /// the form `"key":value,...`, without braces) into the top-level
    /// object — used by exporters to attach drift verdicts computed a
    /// layer above the runtime.
    pub fn to_json_with(&self, extra_fields: &str) -> String {
        let mut s = String::with_capacity(256 + 220 * self.actors.len());
        let _ = write!(
            s,
            "{{\"type\":\"snapshot\",\"tick\":{},\"t_ns\":{},\"interval_ns\":{},",
            self.tick, self.t_ns, self.interval_ns
        );
        if let Some(tenant) = &self.tenant {
            s.push_str("\"tenant\":\"");
            escape_json(tenant, &mut s);
            s.push_str("\",");
        }
        s.push_str("\"actors\":[");
        for (i, a) in self.actors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"id\":{},\"name\":\"", a.id.0);
            escape_json(&a.name, &mut s);
            if let Some(tenant) = &self.tenant {
                s.push_str("\",\"tenant\":\"");
                escape_json(tenant, &mut s);
            }
            let _ = write!(
                s,
                "\",\"items_in\":{},\"items_out\":{},\"queue_depth\":",
                a.items_in, a.items_out
            );
            match a.queue_depth {
                Some(d) => {
                    let _ = write!(s, "{d}");
                }
                None => s.push_str("null"),
            }
            s.push_str(",\"queue_capacity\":");
            match a.queue_capacity {
                Some(c) => {
                    let _ = write!(s, "{c}");
                }
                None => s.push_str("null"),
            }
            let _ = write!(
                s,
                ",\"arrival_rate\":{:.3},\"departure_rate\":{:.3},\"utilization\":{:.4},\
                 \"panics\":{},\"restarts\":{},\"dead_letters\":{},\"dropped\":{},\
                 \"busy_ns\":{},\"blocked_ns\":{},\"inbox_stall_ns\":{},\
                 \"snapshots\":{},\"snapshot_bytes\":{},\"align_stall_ns\":{},\
                 \"recoveries\":{},\"replayed\":{},\"replay_overflows\":{}}}",
                a.arrival_rate,
                a.departure_rate,
                a.utilization,
                a.panics,
                a.restarts,
                a.dead_letters,
                a.dropped,
                a.busy_ns,
                a.blocked_ns,
                a.inbox_stall_ns,
                a.snapshots,
                a.snapshot_bytes,
                a.align_stall_ns,
                a.recoveries,
                a.replayed,
                a.replay_overflows
            );
        }
        s.push_str("],\"latency\":[");
        for (i, l) in self.latencies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"sink\":{},\"name\":\"", l.actor.0);
            escape_json(&l.name, &mut s);
            let _ = write!(
                s,
                "\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                l.latency.count,
                l.latency.mean_ns,
                l.latency.p50_ns,
                l.latency.p95_ns,
                l.latency.p99_ns,
                l.latency.max_ns
            );
        }
        let _ = write!(s, "],\"trace_total\":{}", self.trace_total);
        s.push_str(",\"last_complete_epoch\":");
        match self.last_complete_epoch {
            Some(e) => {
                let _ = write!(s, "{e}");
            }
            None => s.push_str("null"),
        }
        if !extra_fields.is_empty() {
            s.push(',');
            s.push_str(extra_fields);
        }
        s.push('}');
        s
    }
}

/// Everything the telemetry layer collected over one run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Retained snapshots, oldest first (ring-bounded).
    pub snapshots: Vec<TelemetrySnapshot>,
    /// Retained trace events, in sequence order (capacity-bounded).
    pub trace: Vec<TraceEvent>,
    /// Total trace events recorded (including any beyond capacity).
    pub trace_total: u64,
}

impl TelemetryReport {
    /// The last snapshot taken, if any.
    pub fn last_snapshot(&self) -> Option<&TelemetrySnapshot> {
        self.snapshots.last()
    }

    /// Renders all snapshots followed by all retained trace events as
    /// JSON-lines.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for snap in &self.snapshots {
            s.push_str(&snap.to_json());
            s.push('\n');
        }
        for ev in &self.trace {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }
}

/// One hop of an assembled flight-recorder span: the traced tuple was
/// drained by `actor` at `t_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHop {
    /// The actor that processed the traced tuple on this hop.
    pub actor: ActorId,
    /// Batch-granular processing timestamp (ns since run start).
    pub t_ns: u64,
    /// Sojourn on this hop: time since the previous hop (or since the
    /// source stamp for the first hop). Queue-wait plus service plus any
    /// upstream flush delay; the attribution layer splits it further
    /// using the re-profiled service times and the inbox stall counters.
    pub hop_ns: u64,
}

/// A sampled tuple's assembled causal path through the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanPath {
    /// The traced tuple's source sequence number.
    pub tuple_seq: u64,
    /// The tuple's source timestamp (span start, hop zero).
    pub src_ns: u64,
    /// Hops in causal (trace) order, typically ending at a sink.
    pub hops: Vec<SpanHop>,
}

impl SpanPath {
    /// End-to-end latency of the span: last hop timestamp minus the
    /// source stamp (`None` for an empty span).
    pub fn total_ns(&self) -> Option<u64> {
        self.hops.last().map(|h| h.t_ns.saturating_sub(self.src_ns))
    }
}

/// Groups the retained [`TraceEventKind::Span`] events by traced tuple
/// (`(tuple_seq, src_ns)` identity) and derives per-hop sojourn deltas
/// from the source stamp.
///
/// Hops keep the trace's record order, which is causal for any single
/// tuple (a tuple is drained hop-by-hop in graph order). Spans follow the
/// `seq`/`src_ns` identity stamped at the source; operators that emit
/// fresh tuples (flatmap-style expansion) start new identities and end
/// the traced span at that operator. The returned paths are sorted by
/// `(src_ns, tuple_seq)`, so the output is deterministic whenever the
/// trace is.
pub fn assemble_spans(events: &[TraceEvent]) -> Vec<SpanPath> {
    let mut paths: Vec<SpanPath> = Vec::new();
    for ev in events {
        if let TraceEventKind::Span { tuple_seq, src_ns } = ev.kind {
            let path = match paths
                .iter_mut()
                .find(|p| p.tuple_seq == tuple_seq && p.src_ns == src_ns)
            {
                Some(p) => p,
                None => {
                    paths.push(SpanPath {
                        tuple_seq,
                        src_ns,
                        hops: Vec::new(),
                    });
                    paths.last_mut().expect("just pushed")
                }
            };
            let prev_t = path.hops.last().map(|h| h.t_ns).unwrap_or(src_ns);
            path.hops.push(SpanHop {
                actor: ev.actor,
                t_ns: ev.t_ns,
                hop_ns: ev.t_ns.saturating_sub(prev_t),
            });
        }
    }
    paths.sort_by_key(|p| (p.src_ns, p.tuple_seq));
    paths
}

/// Raw cumulative counters for one actor at one sampling instant, fed to
/// [`TelemetryHub::sample`] by whichever executor owns the counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RawCounters {
    pub items_in: u64,
    pub items_out: u64,
    pub busy_ns: u64,
    pub blocked_ns: u64,
    pub inbox_stall_ns: u64,
    pub panics: u64,
    pub restarts: u64,
    pub dead_letters: u64,
    pub dropped: u64,
    pub snapshots: u64,
    pub snapshot_bytes: u64,
    pub align_stall_ns: u64,
    pub recoveries: u64,
    pub replayed: u64,
    pub replay_overflows: u64,
    pub queue_depth: Option<usize>,
}

impl RawCounters {
    /// Loads the counters from an actor's shared atomic metrics, joined
    /// with the mailbox-side stall accounting (`inbox_stall_ns`).
    pub(crate) fn from_metrics(
        m: &ActorMetrics,
        queue_depth: Option<usize>,
        inbox_stall_ns: u64,
    ) -> Self {
        RawCounters {
            items_in: m.items_in.load(Ordering::Relaxed),
            items_out: m.items_out.load(Ordering::Relaxed),
            busy_ns: m.busy_ns.load(Ordering::Relaxed),
            blocked_ns: m.blocked_ns.load(Ordering::Relaxed),
            inbox_stall_ns,
            panics: m.panics.load(Ordering::Relaxed),
            restarts: m.restarts.load(Ordering::Relaxed),
            dead_letters: m.dead_letters.load(Ordering::Relaxed),
            dropped: m.dropped.load(Ordering::Relaxed),
            snapshots: m.snapshots.load(Ordering::Relaxed),
            snapshot_bytes: m.snapshot_bytes.load(Ordering::Relaxed),
            align_stall_ns: m.align_stall_ns.load(Ordering::Relaxed),
            recoveries: m.recoveries.load(Ordering::Relaxed),
            replayed: m.replayed.load(Ordering::Relaxed),
            replay_overflows: m.replay_overflows.load(Ordering::Relaxed),
            queue_depth,
        }
    }
}

struct PrevCounters {
    t_ns: u64,
    items_in: u64,
    items_out: u64,
    busy_ns: u64,
}

/// Static per-actor telemetry context held by the hub.
pub(crate) struct HubActor {
    pub name: String,
    pub queue_capacity: Option<usize>,
    /// Present only on sink actors (no outgoing routes).
    pub latency: Option<Arc<LatencyHistogram>>,
}

struct HubState {
    prev: Vec<PrevCounters>,
    ring: VecDeque<TelemetrySnapshot>,
    tick: u64,
}

/// The shared aggregation point both executors sample into.
pub(crate) struct TelemetryHub {
    actors: Vec<HubActor>,
    pub trace: Arc<TraceLog>,
    ring_capacity: usize,
    tenant: Option<String>,
    state: Mutex<HubState>,
    on_snapshot: Option<SnapshotCallback>,
}

impl TelemetryHub {
    pub(crate) fn new(actors: Vec<HubActor>, config: &TelemetryConfig) -> Self {
        let n = actors.len();
        TelemetryHub {
            actors,
            trace: Arc::new(TraceLog::with_capacity(config.trace_capacity)),
            ring_capacity: config.ring_capacity.max(1),
            tenant: config.tenant.clone(),
            state: Mutex::new(HubState {
                prev: (0..n)
                    .map(|_| PrevCounters {
                        t_ns: 0,
                        items_in: 0,
                        items_out: 0,
                        busy_ns: 0,
                    })
                    .collect(),
                ring: VecDeque::new(),
                tick: 0,
            }),
            on_snapshot: config.on_snapshot.clone(),
        }
    }

    /// The latency histogram of actor `i`, if it is a sink.
    pub(crate) fn latency_of(&self, i: usize) -> Option<Arc<LatencyHistogram>> {
        self.actors[i].latency.clone()
    }

    /// Takes one snapshot at `t_ns` from the supplied raw counters,
    /// pushes it into the ring and notifies the subscriber.
    /// `last_complete_epoch` is the checkpoint coordinator's globally
    /// completed epoch at sampling time (`None` when checkpointing is
    /// off).
    pub(crate) fn sample(
        &self,
        t_ns: u64,
        raw: &[RawCounters],
        last_complete_epoch: Option<u64>,
    ) -> TelemetrySnapshot {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // All actors share the same window; take it from slot 0 (or 0 ns
        // for an empty graph, which validation rejects anyway).
        let window_ns = state
            .prev
            .first()
            .map(|p| t_ns.saturating_sub(p.t_ns))
            .unwrap_or(0);
        // Zero-width window (two samples on the same timestamp, e.g. the
        // final flush racing the sampler on a coarse clock): rates would
        // be 0/0. Merge into the previous snapshot — refresh its
        // cumulative counters but keep its rates, tick and `prev`
        // baseline, so the intervening deltas are attributed to the next
        // real window instead of being dropped or reported as NaN/inf.
        if window_ns == 0 {
            if let Some(last) = state.ring.back().cloned() {
                let merged = self.merge_into(last, raw, last_complete_epoch);
                *state.ring.back_mut().expect("ring non-empty") = merged.clone();
                return merged;
            }
        }
        let tick = state.tick;
        state.tick += 1;
        let mut samples = Vec::with_capacity(self.actors.len());
        for (i, actor) in self.actors.iter().enumerate() {
            let r = &raw[i];
            let prev = &mut state.prev[i];
            let (arrival, departure, util) = if window_ns == 0 {
                (0.0, 0.0, 0.0)
            } else {
                let dt = window_ns as f64 / 1e9;
                (
                    r.items_in.saturating_sub(prev.items_in) as f64 / dt,
                    r.items_out.saturating_sub(prev.items_out) as f64 / dt,
                    // A busy span finishing just after the boundary can
                    // push the ratio marginally past 1; clamp — a single
                    // logical server cannot be more than fully utilized.
                    (r.busy_ns.saturating_sub(prev.busy_ns) as f64 / window_ns as f64).min(1.0),
                )
            };
            *prev = PrevCounters {
                t_ns,
                items_in: r.items_in,
                items_out: r.items_out,
                busy_ns: r.busy_ns,
            };
            samples.push(ActorSample {
                id: ActorId(i),
                name: actor.name.clone(),
                items_in: r.items_in,
                items_out: r.items_out,
                queue_depth: r.queue_depth,
                queue_capacity: actor.queue_capacity,
                arrival_rate: arrival,
                departure_rate: departure,
                utilization: util,
                panics: r.panics,
                restarts: r.restarts,
                dead_letters: r.dead_letters,
                dropped: r.dropped,
                busy_ns: r.busy_ns,
                blocked_ns: r.blocked_ns,
                inbox_stall_ns: r.inbox_stall_ns,
                snapshots: r.snapshots,
                snapshot_bytes: r.snapshot_bytes,
                align_stall_ns: r.align_stall_ns,
                recoveries: r.recoveries,
                replayed: r.replayed,
                replay_overflows: r.replay_overflows,
            });
        }
        let latencies = self
            .actors
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                a.latency.as_ref().map(|h| SinkLatency {
                    actor: ActorId(i),
                    name: a.name.clone(),
                    latency: h.snapshot(),
                })
            })
            .collect();
        let snapshot = TelemetrySnapshot {
            tick,
            t_ns,
            interval_ns: window_ns,
            actors: samples,
            latencies,
            trace_total: self.trace.total(),
            last_complete_epoch,
            tenant: self.tenant.clone(),
        };
        state.ring.push_back(snapshot.clone());
        while state.ring.len() > self.ring_capacity {
            state.ring.pop_front();
        }
        drop(state);
        if let Some(cb) = &self.on_snapshot {
            cb(&snapshot);
        }
        snapshot
    }

    /// Refreshes the cumulative fields of `last` from `raw` without
    /// touching its rates or tick — the zero-width-window merge.
    fn merge_into(
        &self,
        mut last: TelemetrySnapshot,
        raw: &[RawCounters],
        last_complete_epoch: Option<u64>,
    ) -> TelemetrySnapshot {
        for (i, s) in last.actors.iter_mut().enumerate() {
            let r = &raw[i];
            s.items_in = r.items_in;
            s.items_out = r.items_out;
            s.queue_depth = r.queue_depth;
            s.panics = r.panics;
            s.restarts = r.restarts;
            s.dead_letters = r.dead_letters;
            s.dropped = r.dropped;
            s.busy_ns = r.busy_ns;
            s.blocked_ns = r.blocked_ns;
            s.inbox_stall_ns = r.inbox_stall_ns;
            s.snapshots = r.snapshots;
            s.snapshot_bytes = r.snapshot_bytes;
            s.align_stall_ns = r.align_stall_ns;
            s.recoveries = r.recoveries;
            s.replayed = r.replayed;
            s.replay_overflows = r.replay_overflows;
        }
        for l in &mut last.latencies {
            if let Some(h) = self.actors[l.actor.0].latency.as_ref() {
                l.latency = h.snapshot();
            }
        }
        last.trace_total = self.trace.total();
        last.last_complete_epoch = last_complete_epoch;
        last
    }

    /// Drains the hub into the final report.
    pub(crate) fn into_report(self) -> TelemetryReport {
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        TelemetryReport {
            snapshots: state.ring.into(),
            trace: self.trace.entries(),
            trace_total: self.trace.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert_eq!(s.max_ns, 51200);
        assert!(s.p50_ns >= 100 && s.p50_ns <= 3200, "p50 {}", s.p50_ns);
        assert!(s.mean_ns > 0);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.snapshot(), LatencySnapshot::default());
        h.record(0); // clamped into the 1 ns bucket
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn histogram_single_value_quantiles_collapse() {
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        // Every quantile lands in the same bucket, capped at the true max.
        assert!(s.p50_ns <= 1_000_000 * 2);
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.mean_ns, 1_000_000);
        assert!(s.p99_ns <= s.max_ns);
    }

    #[test]
    fn trace_log_caps_entries_but_counts_all() {
        let log = TraceLog::with_capacity(2);
        for i in 0..5 {
            log.record(i * 10, ActorId(0), TraceEventKind::ActorStarted);
        }
        assert_eq!(log.total(), 5);
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
    }

    #[test]
    fn trace_event_json_shapes() {
        let ev = TraceEvent {
            seq: 3,
            t_ns: 99,
            actor: ActorId(1),
            kind: TraceEventKind::Backoff { ns: 500 },
        };
        let j = ev.to_json();
        assert!(j.contains("\"event\":\"backoff\""));
        assert!(j.contains("\"ns\":500"));
        let ev = TraceEvent {
            seq: 4,
            t_ns: 100,
            actor: ActorId(2),
            kind: TraceEventKind::DeadLetter {
                reason: DeadLetterReason::SendTimeout,
            },
        };
        assert!(ev.to_json().contains("\"reason\":\"send-timeout\""));
    }

    fn hub_with(names: &[&str]) -> TelemetryHub {
        let actors = names
            .iter()
            .enumerate()
            .map(|(i, n)| HubActor {
                name: n.to_string(),
                queue_capacity: if i == 0 { None } else { Some(16) },
                latency: if i + 1 == names.len() {
                    Some(Arc::new(LatencyHistogram::new()))
                } else {
                    None
                },
            })
            .collect();
        TelemetryHub::new(actors, &TelemetryConfig::default())
    }

    #[test]
    fn hub_computes_rolling_rates_from_deltas() {
        let hub = hub_with(&["src", "sink"]);
        let raw0 = [
            RawCounters {
                items_out: 100,
                ..RawCounters::default()
            },
            RawCounters {
                items_in: 100,
                busy_ns: 500_000_000,
                queue_depth: Some(3),
                ..RawCounters::default()
            },
        ];
        let s0 = hub.sample(1_000_000_000, &raw0, None);
        assert_eq!(s0.tick, 0);
        assert!((s0.actors[0].departure_rate - 100.0).abs() < 1e-9);
        assert!((s0.actors[1].utilization - 0.5).abs() < 1e-9);
        assert_eq!(s0.actors[1].queue_depth, Some(3));

        // Second window: 50 more items over 0.5 s -> 100/s rolling.
        let raw1 = [
            RawCounters {
                items_out: 150,
                ..RawCounters::default()
            },
            RawCounters {
                items_in: 150,
                busy_ns: 750_000_000,
                queue_depth: Some(0),
                ..RawCounters::default()
            },
        ];
        let s1 = hub.sample(1_500_000_000, &raw1, None);
        assert_eq!(s1.tick, 1);
        assert_eq!(s1.interval_ns, 500_000_000);
        assert!((s1.actors[0].departure_rate - 100.0).abs() < 1e-9);
        assert!((s1.actors[1].arrival_rate - 100.0).abs() < 1e-9);
        assert!((s1.actors[1].utilization - 0.5).abs() < 1e-9);
        // Cumulative counters are still absolute.
        assert_eq!(s1.actors[0].items_out, 150);
    }

    #[test]
    fn zero_width_window_merges_instead_of_emitting_bogus_rates() {
        let hub = hub_with(&["src", "sink"]);
        let raw0 = [
            RawCounters {
                items_out: 100,
                ..RawCounters::default()
            },
            RawCounters {
                items_in: 100,
                busy_ns: 500_000_000,
                ..RawCounters::default()
            },
        ];
        let s0 = hub.sample(1_000_000_000, &raw0, None);
        // A second sample on the same timestamp: counters advanced but no
        // time passed. It must merge into tick 0, not mint a zero-rate
        // (or NaN/inf) snapshot.
        let raw1 = [
            RawCounters {
                items_out: 160,
                ..RawCounters::default()
            },
            RawCounters {
                items_in: 160,
                busy_ns: 700_000_000,
                ..RawCounters::default()
            },
        ];
        let s1 = hub.sample(1_000_000_000, &raw1, Some(3));
        assert_eq!(s1.tick, 0, "merged into the previous tick");
        assert_eq!(s1.actors[0].items_out, 160, "cumulatives refreshed");
        assert_eq!(s1.last_complete_epoch, Some(3));
        // Rates kept from the real window — finite, not 0/NaN/inf.
        assert!((s1.actors[0].departure_rate - s0.actors[0].departure_rate).abs() < 1e-9);
        assert!(s1.actors.iter().all(|a| {
            a.arrival_rate.is_finite() && a.departure_rate.is_finite() && a.utilization.is_finite()
        }));
        // The intervening delta is attributed to the next real window:
        // 60 more items over the next 0.5 s -> 120/s.
        let s2 = hub.sample(1_500_000_000, &raw1, None);
        assert_eq!(s2.tick, 1);
        assert!((s2.actors[0].departure_rate - 120.0).abs() < 1e-9);
        let report = hub.into_report();
        assert_eq!(report.snapshots.len(), 2, "no extra ring entry");
    }

    #[test]
    fn hub_ring_is_bounded_and_report_drains() {
        let cfg = TelemetryConfig {
            ring_capacity: 2,
            ..TelemetryConfig::default()
        };
        let actors = vec![HubActor {
            name: "a".into(),
            queue_capacity: None,
            latency: None,
        }];
        let hub = TelemetryHub::new(actors, &cfg);
        for t in 1..=5u64 {
            hub.sample(t * 1_000_000, &[RawCounters::default()], None);
        }
        let report = hub.into_report();
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.snapshots[0].tick, 3);
        assert_eq!(report.snapshots[1].tick, 4);
    }

    #[test]
    fn snapshot_json_contains_required_fields() {
        let hub = hub_with(&["src", "sink"]);
        hub.latency_of(1).unwrap().record(42_000);
        let snap = hub.sample(
            1_000_000_000,
            &[RawCounters::default(), RawCounters::default()],
            Some(7),
        );
        let json = snap.to_json();
        for needle in [
            "\"type\":\"snapshot\"",
            "\"queue_depth\":null",
            "\"arrival_rate\":",
            "\"departure_rate\":",
            "\"utilization\":",
            "\"p50_ns\":",
            "\"p95_ns\":",
            "\"p99_ns\":",
            "\"max_ns\":",
            "\"busy_ns\":0",
            "\"blocked_ns\":0",
            "\"inbox_stall_ns\":0",
            "\"snapshots\":0",
            "\"snapshot_bytes\":0",
            "\"align_stall_ns\":0",
            "\"recoveries\":0",
            "\"replayed\":0",
            "\"replay_overflows\":0",
            "\"trace_total\":0",
            "\"last_complete_epoch\":7",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let with_extra = snap.to_json_with("\"drift\":[]");
        assert!(with_extra.ends_with(",\"drift\":[]}"));
    }

    #[test]
    fn span_event_json_shape() {
        let ev = TraceEvent {
            seq: 9,
            t_ns: 4_200,
            actor: ActorId(2),
            kind: TraceEventKind::Span {
                tuple_seq: 64,
                src_ns: 1_000,
            },
        };
        let j = ev.to_json();
        assert!(j.contains("\"event\":\"span\""), "{j}");
        assert!(j.contains("\"tuple_seq\":64"), "{j}");
        assert!(j.contains("\"src_ns\":1000"), "{j}");
    }

    #[test]
    fn assemble_spans_groups_hops_and_derives_deltas() {
        let span = |seq, t_ns, actor, tuple_seq, src_ns| TraceEvent {
            seq,
            t_ns,
            actor: ActorId(actor),
            kind: TraceEventKind::Span { tuple_seq, src_ns },
        };
        let events = vec![
            // Tuple 0 born at 100 ns, three hops; tuple 8 interleaved.
            span(0, 150, 1, 0, 100),
            TraceEvent {
                seq: 1,
                t_ns: 160,
                actor: ActorId(1),
                kind: TraceEventKind::ActorStarted,
            },
            span(2, 170, 1, 8, 160),
            span(3, 400, 2, 0, 100),
            span(4, 450, 2, 8, 160),
            span(5, 900, 3, 0, 100),
        ];
        let paths = assemble_spans(&events);
        assert_eq!(paths.len(), 2);
        let p0 = &paths[0];
        assert_eq!((p0.tuple_seq, p0.src_ns), (0, 100));
        assert_eq!(p0.hops.len(), 3);
        assert_eq!(p0.hops[0].hop_ns, 50); // 150 - src 100
        assert_eq!(p0.hops[1].hop_ns, 250); // 400 - 150
        assert_eq!(p0.hops[2].hop_ns, 500); // 900 - 400
        assert_eq!(p0.total_ns(), Some(800));
        let p1 = &paths[1];
        assert_eq!((p1.tuple_seq, p1.src_ns), (8, 160));
        assert_eq!(p1.hops.len(), 2);
        assert_eq!(p1.hops[0].actor, ActorId(1));
        assert_eq!(p1.total_ns(), Some(290));
    }

    #[test]
    fn span_mask_rounds_sample_period_to_power_of_two() {
        assert_eq!(TelemetryConfig::default().span_mask(), None);
        let cfg = TelemetryConfig::default().with_span_sample(1);
        assert_eq!(cfg.span_mask(), Some(0)); // every tuple
        let cfg = TelemetryConfig::default().with_span_sample(64);
        assert_eq!(cfg.span_mask(), Some(63));
        let cfg = TelemetryConfig::default().with_span_sample(100);
        assert_eq!(cfg.span_mask(), Some(127));
    }

    #[test]
    fn json_escaping_handles_special_names() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn subscriber_sees_every_snapshot() {
        use std::sync::atomic::AtomicUsize;
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let cfg = TelemetryConfig::default().with_on_snapshot(move |_s| {
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let hub = TelemetryHub::new(
            vec![HubActor {
                name: "a".into(),
                queue_capacity: None,
                latency: None,
            }],
            &cfg,
        );
        hub.sample(1, &[RawCounters::default()], None);
        hub.sample(2, &[RawCounters::default()], None);
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }
}
