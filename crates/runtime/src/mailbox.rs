//! Bounded blocking mailboxes with Blocking-After-Service semantics.
//!
//! The paper's cost models assume streams implemented as fixed-capacity FIFO
//! buffers where "when an output item attempts to enter into a full queue,
//! that item is blocked until a free slot becomes available" (§3, BAS). The
//! Akka evaluation uses `BoundedMailbox` with a send timeout after which the
//! item is discarded (§5.1); [`Sender::send`] reproduces both behaviors.

use spinstreams_core::Tuple;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mailbox mutex, recovering from poisoning.
///
/// A mailbox lock is only ever held inside this module for queue
/// manipulation, so a poisoned lock means a foreign panic (e.g. OOM abort
/// path) interrupted a push/pop; the queue itself is still structurally
/// sound and the supervised engine must keep running.
fn lock_queue(m: &Mutex<VecDeque<Envelope>>) -> MutexGuard<'_, VecDeque<Envelope>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A message in an actor's mailbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// A stream item.
    Data(Tuple),
    /// End-of-stream marker; one is sent by each upstream sender when it
    /// finishes.
    Eos,
}

/// Outcome of a send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The envelope was enqueued without waiting.
    Sent,
    /// The envelope was enqueued after blocking for the given duration
    /// (backpressure).
    SentAfterBlocking(Duration),
    /// The send timeout elapsed with the mailbox still full; the envelope
    /// was dropped (Akka's bounded-mailbox `pushTimeOut` behavior).
    TimedOut,
    /// The receiver is gone; the envelope was discarded.
    Disconnected,
}

impl SendOutcome {
    /// True if the envelope was delivered.
    pub fn delivered(self) -> bool {
        matches!(self, SendOutcome::Sent | SendOutcome::SentAfterBlocking(_))
    }

    /// Time spent blocked on backpressure, if any.
    pub fn blocked_for(self) -> Duration {
        match self {
            SendOutcome::SentAfterBlocking(d) => d,
            _ => Duration::ZERO,
        }
    }
}

/// Outcome of a blocking receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvResult {
    /// An envelope was dequeued.
    Envelope(Envelope),
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

struct Inner {
    queue: Mutex<VecDeque<Envelope>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    senders: AtomicUsize,
    receiver_alive: AtomicUsize,
}

/// The sending half of a mailbox. Cloning adds another producer.
pub struct Sender {
    inner: Arc<Inner>,
}

/// The receiving half of a mailbox (single consumer).
pub struct Receiver {
    inner: Arc<Inner>,
}

/// Creates a bounded BAS mailbox with the given capacity.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel(capacity: usize) -> (Sender, Receiver) {
    assert!(capacity > 0, "mailbox capacity must be positive");
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl Clone for Sender {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake a receiver waiting on an empty queue.
            let _guard = lock_queue(&self.inner.queue);
            self.inner.not_empty.notify_all();
        }
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        self.inner.receiver_alive.store(0, Ordering::SeqCst);
        let _guard = lock_queue(&self.inner.queue);
        self.inner.not_full.notify_all();
    }
}

impl Sender {
    /// Sends with BAS semantics: if the mailbox is full, block until a slot
    /// frees up or `timeout` elapses (then the envelope is dropped and
    /// [`SendOutcome::TimedOut`] is returned).
    pub fn send(&self, env: Envelope, timeout: Duration) -> SendOutcome {
        let mut queue = lock_queue(&self.inner.queue);
        if queue.len() < self.inner.capacity {
            queue.push_back(env);
            drop(queue);
            self.inner.not_empty.notify_one();
            return SendOutcome::Sent;
        }
        // Backpressure path.
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            if self.inner.receiver_alive.load(Ordering::SeqCst) == 0 {
                return SendOutcome::Disconnected;
            }
            if queue.len() < self.inner.capacity {
                queue.push_back(env);
                drop(queue);
                self.inner.not_empty.notify_one();
                return SendOutcome::SentAfterBlocking(start.elapsed());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, wait) = self
                .inner
                .not_full
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if wait.timed_out() {
                return if queue.len() < self.inner.capacity {
                    queue.push_back(env);
                    drop(queue);
                    self.inner.not_empty.notify_one();
                    SendOutcome::SentAfterBlocking(start.elapsed())
                } else {
                    SendOutcome::TimedOut
                };
            }
        }
    }

    /// Current queue length (approximate; for tests and diagnostics).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// A passive observer of a mailbox's queue depth.
///
/// Unlike a cloned [`Sender`], a probe does not count as a producer, so
/// holding one does not delay disconnect detection on the receiver side —
/// the telemetry sampler can keep probes alive for the whole run without
/// perturbing termination.
pub struct DepthProbe {
    inner: Arc<Inner>,
}

impl DepthProbe {
    /// Current queue length (approximate; the queue is concurrently
    /// mutated).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl Sender {
    /// Creates a passive depth probe on this mailbox.
    pub fn depth_probe(&self) -> DepthProbe {
        DepthProbe {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Receiver {
    /// Blocks until an envelope is available or every sender is gone.
    pub fn recv(&self) -> RecvResult {
        let mut queue = lock_queue(&self.inner.queue);
        loop {
            if let Some(env) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return RecvResult::Envelope(env);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return RecvResult::Disconnected;
            }
            queue = self
                .inner
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive; `None` if the mailbox is momentarily empty.
    pub fn try_recv(&self) -> Option<Envelope> {
        let mut queue = lock_queue(&self.inner.queue);
        let env = queue.pop_front();
        if env.is_some() {
            drop(queue);
            self.inner.not_full.notify_one();
        }
        env
    }

    /// Current queue length (approximate).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(seq: u64) -> Envelope {
        Envelope::Data(Tuple::splat(0, seq, 1.0))
    }

    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn send_recv_fifo_order() {
        let (tx, rx) = channel(8);
        for i in 0..5 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
        }
        for i in 0..5 {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn full_mailbox_blocks_sender_until_slot_frees() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        assert_eq!(tx.send(item(1), LONG), SendOutcome::Sent);
        let handle = thread::spawn(move || tx.send(item(2), LONG));
        thread::sleep(Duration::from_millis(50));
        // The third send is still blocked; unblock it.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        let outcome = handle.join().unwrap();
        match outcome {
            SendOutcome::SentAfterBlocking(d) => {
                assert!(d >= Duration::from_millis(30), "blocked {d:?}")
            }
            other => panic!("expected blocking send, got {other:?}"),
        }
    }

    #[test]
    fn send_times_out_and_drops_item() {
        let (tx, _rx) = channel(1);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        let outcome = tx.send(item(1), Duration::from_millis(50));
        assert_eq!(outcome, SendOutcome::TimedOut);
        assert!(!outcome.delivered());
        // The queue still holds only the first item.
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn recv_blocks_until_item_arrives() {
        let (tx, rx) = channel(4);
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(30));
        assert_eq!(tx.send(item(7), LONG), SendOutcome::Sent);
        match handle.join().unwrap() {
            RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropping_all_senders_disconnects_receiver() {
        let (tx, rx) = channel(4);
        let tx2 = tx.clone();
        tx.send(item(0), LONG);
        drop(tx);
        drop(tx2);
        // Buffered item still delivered, then disconnect.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
    }

    #[test]
    fn dropping_receiver_unblocks_sender() {
        let (tx, rx) = channel(1);
        tx.send(item(0), LONG);
        let handle = thread::spawn(move || tx.send(item(1), LONG));
        thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(handle.join().unwrap(), SendOutcome::Disconnected);
    }

    #[test]
    fn multiple_producers_all_items_arrive() {
        let (tx, rx) = channel(4);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let txp = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    assert!(txp.send(item(p * 1000 + i), LONG).delivered());
                }
            }));
        }
        drop(tx);
        let mut got = 0;
        while let RecvResult::Envelope(_) = rx.recv() {
            got += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, 400);
    }

    #[test]
    fn eos_envelopes_pass_through() {
        let (tx, rx) = channel(2);
        tx.send(Envelope::Eos, LONG);
        assert_eq!(rx.recv(), RecvResult::Envelope(Envelope::Eos));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel(2);
        assert_eq!(rx.try_recv(), None);
        tx.send(item(3), LONG);
        assert!(matches!(rx.try_recv(), Some(Envelope::Data(_))));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }

    #[test]
    fn depth_probe_observes_without_producing() {
        let (tx, rx) = channel(4);
        let probe = tx.depth_probe();
        assert!(probe.is_empty());
        assert_eq!(probe.capacity(), 4);
        tx.send(item(0), LONG);
        tx.send(item(1), LONG);
        assert_eq!(probe.len(), 2);
        // Dropping the only sender must still disconnect the receiver even
        // though the probe outlives it.
        drop(tx);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
        assert_eq!(probe.len(), 0);
    }

    #[test]
    fn capacity_and_len_reporting() {
        let (tx, rx) = channel(3);
        assert_eq!(tx.capacity(), 3);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(item(0), LONG);
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }
}
