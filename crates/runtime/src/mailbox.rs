//! Bounded lock-free mailboxes with Blocking-After-Service semantics.
//!
//! The paper's cost models assume streams implemented as fixed-capacity FIFO
//! buffers where "when an output item attempts to enter into a full queue,
//! that item is blocked until a free slot becomes available" (§3, BAS). The
//! Akka evaluation uses `BoundedMailbox` with a send timeout after which the
//! item is discarded (§5.1); [`Sender::send`] reproduces both behaviors.
//!
//! # Implementation
//!
//! The queue is a bounded ring buffer in the style of Dmitry Vyukov's MPMC
//! queue (the same algorithm as crossbeam's `ArrayQueue`), restricted to a
//! single consumer. Each slot carries a `stamp` that encodes both the ring
//! index and a *lap* counter, so producers and the consumer can tell — from
//! one atomic load — whether a slot is free, holds data, or is mid-transfer.
//! No mutex or condvar sits on the data path; envelopes move between threads
//! purely through atomic stamps.
//!
//! Fan-in edges (several upstream actors sharing one mailbox) claim slots
//! with a CAS on `tail`; single-producer edges ([`channel_spsc`]) skip the
//! CAS and advance `tail` with a plain store, upgrading themselves to the
//! CAS path if the sender is ever cloned.
//!
//! Blocking (BAS backpressure and empty-mailbox receives) is adaptive:
//! callers spin briefly, then yield, then park the OS thread. Parking uses a
//! Dekker-style handshake — the parker publishes a "parked" flag, issues a
//! `SeqCst` fence, re-checks the queue, and only then parks; the waking side
//! issues the matching fence before testing the flag — so a wakeup can never
//! be lost between the re-check and the park. As belt-and-braces every park
//! is bounded by [`MAX_PARK`].

use spinstreams_core::Tuple;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::{self, Thread, ThreadId};
use std::time::{Duration, Instant};

/// Upper bound on any single `park_timeout` call. The Dekker handshake makes
/// lost wakeups impossible in theory; the cap makes them harmless in
/// practice (a missed wakeup costs at most one millisecond, not a hang).
const MAX_PARK: Duration = Duration::from_millis(1);

/// Locks the waiter registry, recovering from poisoning.
///
/// The lock is only held to push/take parked thread handles, so a poisoned
/// lock means a foreign panic (e.g. OOM abort path) interrupted a
/// registration; the registry is still structurally sound and the
/// supervised engine must keep running.
fn lock_waiters(m: &Mutex<Waiters>) -> MutexGuard<'_, Waiters> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A message in an actor's mailbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// A stream item.
    Data(Tuple),
    /// An epoch (checkpoint barrier) marker carrying the epoch number.
    /// Sources inject one per out-edge every `checkpoint_interval` items;
    /// each actor aligns on markers from all in-edges before snapshotting
    /// and re-broadcasting. The ring moves markers like any other
    /// envelope — the lock-free fast path is marker-agnostic.
    Epoch(u64),
    /// End-of-stream marker; one is sent by each upstream sender when it
    /// finishes.
    Eos,
    /// Key-state handoff token (live repartitioning): the migrated state
    /// itself travels out-of-band in the shared reconfiguration map — the
    /// envelope only carries the handoff id, so `Envelope` stays `Copy` —
    /// but its *position* in the mailbox is the correctness guarantee:
    /// FIFO order puts it ahead of every released post-migration tuple,
    /// so the new owner merges state before touching moved-key data.
    Handoff(u64),
}

/// Outcome of a send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The envelope was enqueued without waiting.
    Sent,
    /// The envelope was enqueued after blocking for the given duration
    /// (backpressure).
    SentAfterBlocking(Duration),
    /// The send timeout elapsed with the mailbox still full; the envelope
    /// was dropped (Akka's bounded-mailbox `pushTimeOut` behavior).
    TimedOut,
    /// The receiver is gone; the envelope was discarded.
    Disconnected,
}

impl SendOutcome {
    /// True if the envelope was delivered.
    pub fn delivered(self) -> bool {
        matches!(self, SendOutcome::Sent | SendOutcome::SentAfterBlocking(_))
    }

    /// Time spent blocked on backpressure, if any.
    pub fn blocked_for(self) -> Duration {
        match self {
            SendOutcome::SentAfterBlocking(d) => d,
            _ => Duration::ZERO,
        }
    }
}

/// Outcome of a non-blocking [`Sender::try_send`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySend {
    /// The envelope was enqueued.
    Sent,
    /// The mailbox is full; the envelope was not enqueued.
    Full,
    /// The mailbox is full and the receiver is gone; the envelope can never
    /// be delivered.
    Disconnected,
}

/// Why a batched send stopped before delivering every envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFailure {
    /// The per-slot send timeout elapsed with the mailbox still full; the
    /// envelope at `delivered` (and everything after it) was not enqueued.
    TimedOut,
    /// The receiver is gone; the remaining envelopes cannot be delivered.
    Disconnected,
}

/// Outcome of a [`Sender::send_batch`] call.
///
/// Delivery is always a *prefix* of the batch, in order: BAS semantics hold
/// per slot, so a full queue blocks the remainder of the batch rather than
/// dropping envelopes mid-batch. Only a timeout (or a vanished receiver)
/// terminates delivery early, and then every undelivered envelope stays in
/// the caller's buffer for per-envelope accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Number of envelopes enqueued (the delivered prefix).
    pub delivered: usize,
    /// Total time spent blocked on backpressure while delivering the
    /// prefix. Zero when every slot was free immediately.
    pub blocked: Duration,
    /// Why delivery stopped before the end of the batch (`None` = the whole
    /// batch was delivered).
    pub failure: Option<BatchFailure>,
}

impl BatchOutcome {
    /// True if every envelope of the batch was enqueued.
    pub fn complete(&self) -> bool {
        self.failure.is_none()
    }
}

/// Outcome of a non-blocking [`Sender::try_send_batch`] call.
///
/// Like [`BatchOutcome`], delivery is a prefix of the batch (drained from
/// the caller's buffer); unlike it, a full mailbox returns immediately
/// instead of blocking, so the caller can do other work — the pool executor
/// runs *other ready actors* — before retrying the remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryBatch {
    /// Number of envelopes enqueued (the delivered prefix).
    pub delivered: usize,
    /// True if the receiver is gone; the remaining envelopes can never be
    /// delivered.
    pub disconnected: bool,
}

/// Outcome of a blocking receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvResult {
    /// An envelope was dequeued.
    Envelope(Envelope),
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

/// Outcome of a [`Receiver::recv_drain`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvBatch {
    /// This many envelopes were appended to the caller's buffer (≥ 1).
    Received(usize),
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

/// Outcome of a non-blocking [`Receiver::try_drain`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvBatch {
    /// This many envelopes were appended to the caller's buffer (≥ 1).
    Received(usize),
    /// The mailbox is momentarily empty but senders remain.
    Empty,
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

/// One ring slot. `stamp` encodes the slot's state relative to `head`/`tail`
/// (see [`Inner`]); `value` is only read/written by the thread that owns the
/// slot per the stamp protocol.
struct Slot {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<Envelope>>,
}

/// Threads parked on this mailbox, registered *before* their parked flag is
/// set so a waker that observes the flag always finds the handle.
struct Waiters {
    /// The single consumer, when parked waiting for data.
    consumer: Option<Thread>,
    /// Producers parked on backpressure, deduplicated by thread id (a
    /// producer re-registers on every park loop iteration).
    producers: Vec<(ThreadId, Thread)>,
}

/// Pads a hot atomic to its own cache line so `head` and `tail` (written by
/// different sides) don't false-share.
#[repr(align(64))]
struct CacheLine<T>(T);

struct Inner {
    buffer: Box<[Slot]>,
    capacity: usize,
    /// Lap stride: the smallest power of two > `capacity`. `head`/`tail`
    /// encode `lap * one_lap + index`; a slot's stamp equal to `tail` means
    /// "free this lap", equal to `head + 1` means "holds data this lap".
    one_lap: usize,
    /// Next slot to pop. Written only by the single consumer (plain store,
    /// no CAS); producers read it only to confirm fullness, where staleness
    /// is benign (resolved by the park handshake).
    head: CacheLine<AtomicUsize>,
    /// Next slot to claim. Producers claim with a CAS, or a plain store on
    /// single-producer edges (`mp == false`).
    tail: CacheLine<AtomicUsize>,
    /// True once more than one producer may push concurrently. Starts true
    /// for [`channel`], false for [`channel_spsc`]; flipped (one-way) by
    /// `Sender::clone`. Safe because the cloning thread sees its own store
    /// in program order and any other thread can only obtain the clone
    /// through a synchronizing handoff (spawn/mutex), which publishes it.
    mp: AtomicBool,
    /// Live `Sender` count; 0 means end-of-input once the ring drains.
    senders: AtomicUsize,
    /// False once the `Receiver` is dropped.
    receiver_alive: AtomicBool,
    /// Dekker flag: consumer is (about to be) parked.
    consumer_parked: AtomicBool,
    /// Dekker counter: number of producers (about to be) parked.
    producers_parked: AtomicUsize,
    /// Park registry; locked only on the slow (parking/waking) path.
    waiters: Mutex<Waiters>,
    /// Optional consumer-side wake callback, invoked wherever a parked
    /// consumer would be unparked (data pushed, last sender dropped). The
    /// pool executor installs one per mailbox to mark the owning actor task
    /// ready, so producers blocked *inside* a batched send still get their
    /// consumer scheduled.
    wake_hook: OnceLock<Arc<dyn Fn() + Send + Sync>>,
    /// Cumulative nanoseconds producers spent blocked on backpressure while
    /// pushing into *this* mailbox. This is the receiver-edge view of the
    /// same stalls the senders record in their own `blocked_ns`: charging
    /// the time to the congested inbox lets the telemetry layer attribute
    /// backpressure to the operator causing it, not just the operators
    /// suffering it. Accumulated off the fast path (only when a send
    /// actually blocked), read by [`DepthProbe::stalled_ns`].
    stall_ns: AtomicU64,
}

// SAFETY: the `UnsafeCell` slot values are only accessed by the thread that
// owns the slot under the stamp protocol: a producer writes `value` only
// between claiming the slot (CAS/store on `tail`) and publishing the stamp
// (Release store), and the consumer reads it only after observing that
// stamp (Acquire load) and before releasing the slot back. Those Release →
// Acquire pairs order every access to each cell.
unsafe impl Sync for Inner {}

impl Inner {
    /// Advances a `head`/`tail` counter past `cur`: next index, or wrap to
    /// index 0 of the next lap.
    #[inline]
    fn advance(&self, cur: usize) -> usize {
        let index = cur & (self.one_lap - 1);
        let lap = cur & !(self.one_lap - 1);
        if index + 1 < self.capacity {
            cur + 1
        } else {
            lap.wrapping_add(self.one_lap)
        }
    }

    /// Attempts to enqueue one envelope; `false` means the ring is full.
    fn try_push(&self, env: Envelope) -> bool {
        // Relaxed: the claim CAS/store below is what hands out slots; this
        // load is just the starting guess.
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let index = tail & (self.one_lap - 1);
            let slot = &self.buffer[index];
            // Acquire pairs with the consumer's Release store that frees
            // the slot, so the producer's write below cannot be ordered
            // before the consumer's read of the previous lap's value.
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                // Slot free this lap: claim it by advancing `tail`.
                let new_tail = self.advance(tail);
                // Single-producer fast path: no other thread can race the
                // claim, so a plain store replaces the CAS. Relaxed is
                // enough — the Release stamp store below publishes the
                // value, and other threads only read `tail` for full/empty
                // detection where staleness is benign.
                if !self.mp.load(Ordering::Relaxed) {
                    self.tail.0.store(new_tail, Ordering::Relaxed);
                } else if let Err(t) = self.tail.0.compare_exchange_weak(
                    tail,
                    new_tail,
                    // SeqCst on success so the claim participates in the
                    // same total order as the fences in the full/empty
                    // detection paths (mirrors crossbeam's ArrayQueue).
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    tail = t;
                    continue;
                }
                // SAFETY: the claim above gives this thread exclusive
                // ownership of the slot until the stamp store publishes it.
                unsafe {
                    (*slot.value.get()).write(env);
                }
                // Release publishes the value write to the consumer's
                // Acquire stamp load.
                slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                return true;
            } else if stamp.wrapping_add(self.one_lap) == tail.wrapping_add(1) {
                // The slot still holds last lap's value: the ring may be
                // full. The fence orders this check against the consumer's
                // head update so a concurrent pop is not misread as "full
                // forever" (same reasoning as crossbeam's ArrayQueue).
                fence(Ordering::SeqCst);
                let head = self.head.0.load(Ordering::Relaxed);
                if head.wrapping_add(self.one_lap) == tail {
                    return false;
                }
                // A pop is in flight; retry.
                std::hint::spin_loop();
                tail = self.tail.0.load(Ordering::Relaxed);
            } else {
                // Another producer claimed this slot but hasn't stamped it
                // yet; wait for it to finish.
                std::hint::spin_loop();
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue one envelope; `None` means the ring is empty.
    ///
    /// Must only be called by the single consumer.
    fn try_pop(&self) -> Option<Envelope> {
        // Relaxed: only the consumer writes `head`, so it always reads its
        // own latest value (pops from different pool workers are serialized
        // through the task lock, which carries the edit across threads).
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let index = head & (self.one_lap - 1);
            let slot = &self.buffer[index];
            // Acquire pairs with the producer's Release stamp store,
            // publishing the value write.
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                // Slot holds data for this lap. Single consumer: a plain
                // store claims it (no CAS race possible). SeqCst keeps the
                // head update in the total order that producers' full-
                // detection fences rely on.
                self.head.0.store(self.advance(head), Ordering::SeqCst);
                // SAFETY: the stamp says the producer finished writing and
                // no other thread pops; the value is initialized and ours.
                let env = unsafe { (*slot.value.get()).assume_init_read() };
                // Release frees the slot for the producers' next lap,
                // ordering our value read before their overwrite.
                slot.stamp
                    .store(head.wrapping_add(self.one_lap), Ordering::Release);
                return Some(env);
            } else if stamp == head {
                // Slot empty this lap: the ring may be drained. The fence
                // orders the check against producer claims (crossbeam's
                // ArrayQueue reasoning).
                fence(Ordering::SeqCst);
                let tail = self.tail.0.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                // A push is mid-flight; retry.
                std::hint::spin_loop();
                head = self.head.0.load(Ordering::Relaxed);
            } else {
                std::hint::spin_loop();
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues the longest prefix of `batch` that fits; returns how many.
    fn push_burst(&self, batch: &[Envelope]) -> usize {
        let mut n = 0;
        while n < batch.len() && self.try_push(batch[n]) {
            n += 1;
        }
        n
    }

    /// Dequeues up to `max` envelopes into `buf`; returns how many.
    fn pop_burst(&self, buf: &mut Vec<Envelope>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_pop() {
                Some(env) => {
                    buf.push(env);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// True if the slot at `head` holds ready data (a pop would succeed
    /// right now). Used by the consumer's pre-park re-check: data that is
    /// merely *in flight* is fine to park on, because the producer's wake
    /// happens after its stamp store.
    fn pop_ready(&self) -> bool {
        let head = self.head.0.load(Ordering::Relaxed);
        let stamp = self.buffer[head & (self.one_lap - 1)]
            .stamp
            .load(Ordering::Acquire);
        stamp == head.wrapping_add(1)
    }

    /// True if the slot at `tail` is free (a push would succeed right now).
    /// Used by producers' pre-park re-check; a slot mid-pop is fine to park
    /// on because the consumer wakes producers after its stamp store.
    fn push_ready(&self) -> bool {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let stamp = self.buffer[tail & (self.one_lap - 1)]
            .stamp
            .load(Ordering::Acquire);
        stamp == tail
    }

    /// Current queue length (approximate; the ring is concurrently
    /// mutated). Crossbeam's wrap-aware formula over a stable `tail` read.
    fn len(&self) -> usize {
        loop {
            // SeqCst so the head/tail pair is read out of one point in the
            // total order; the re-read of `tail` detects interleaved pops
            // and pushes that would make the pair inconsistent.
            let tail = self.tail.0.load(Ordering::SeqCst);
            let head = self.head.0.load(Ordering::SeqCst);
            if self.tail.0.load(Ordering::SeqCst) == tail {
                let hix = head & (self.one_lap - 1);
                let tix = tail & (self.one_lap - 1);
                return if hix < tix {
                    tix - hix
                } else if hix > tix {
                    self.capacity - hix + tix
                } else if tail == head {
                    0
                } else {
                    self.capacity
                };
            }
        }
    }

    /// Wakes the consumer if it is parked, and fires the pool wake hook.
    ///
    /// Called after every successful push (or burst) and by the last
    /// `Sender` drop.
    fn wake_consumer(&self) {
        // The Dekker pairing: this fence orders our push (or sender-count
        // store) before the flag read; the parker's fence orders its flag
        // store before its queue re-check. Whichever side runs second sees
        // the other's write, so either we see the flag (and unpark) or the
        // parker sees the data (and never parks).
        fence(Ordering::SeqCst);
        // Relaxed probe is fine after the fence; the SeqCst swap below is
        // the authoritative claim on the wakeup.
        if self.consumer_parked.load(Ordering::Relaxed)
            && self.consumer_parked.swap(false, Ordering::SeqCst)
        {
            if let Some(t) = lock_waiters(&self.waiters).consumer.take() {
                t.unpark();
            }
        }
        if let Some(hook) = self.wake_hook.get() {
            hook();
        }
    }

    /// Wakes every parked producer. Called after pops free slots and by the
    /// `Receiver` drop.
    fn wake_producers(&self) {
        // See `wake_consumer` for the fence pairing.
        fence(Ordering::SeqCst);
        if self.producers_parked.load(Ordering::Relaxed) > 0 {
            // Unpark all: several producers may be blocked mid-batch, and a
            // drained entry's spurious unpark is benign (every park sits in
            // a condition re-check loop).
            for (_, t) in lock_waiters(&self.waiters).producers.drain(..) {
                t.unpark();
            }
        }
    }

    /// Parks the consumer for at most `limit`, unless data became ready (or
    /// input ended) between the caller's last check and the flag store.
    fn park_consumer(&self, limit: Duration) {
        lock_waiters(&self.waiters).consumer = Some(thread::current());
        // SeqCst store + fence: the Dekker publish (see `wake_consumer`).
        self.consumer_parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Acquire pairs with the Release decrement in `Drop for Sender`.
        if self.pop_ready() || self.senders.load(Ordering::Acquire) == 0 {
            self.consumer_parked.store(false, Ordering::SeqCst);
            return;
        }
        thread::park_timeout(limit.min(MAX_PARK));
        self.consumer_parked.store(false, Ordering::SeqCst);
    }

    /// Parks a producer for at most `limit`, unless a slot freed up (or the
    /// receiver vanished) between the caller's last check and the flag
    /// store.
    fn park_producer(&self, limit: Duration) {
        {
            let mut w = lock_waiters(&self.waiters);
            let me = thread::current();
            if !w.producers.iter().any(|(id, _)| *id == me.id()) {
                w.producers.push((me.id(), me));
            }
        }
        // SeqCst add + fence: the Dekker publish (see `wake_consumer`).
        self.producers_parked.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // Acquire pairs with the Release store in `Drop for Receiver`.
        let skip = self.push_ready() || !self.receiver_alive.load(Ordering::Acquire);
        if !skip {
            thread::park_timeout(limit.min(MAX_PARK));
        }
        self.producers_parked.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Adaptive wait ladder: spin (cheap, keeps the cache line hot when the
/// other side is running on another core), then yield (lets the other side
/// run when cores are oversubscribed), then tell the caller to park.
struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin steps double from 1 to 32 hint instructions.
    const SPIN_LIMIT: u32 = 6;
    /// After spinning, yield this many times before parking.
    const YIELD_LIMIT: u32 = 10;

    fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Burns one rung of the ladder; returns `false` once exhausted (the
    /// caller should park).
    fn try_wait(&mut self) -> bool {
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
            true
        } else if self.step < Self::YIELD_LIMIT {
            thread::yield_now();
            self.step += 1;
            true
        } else {
            false
        }
    }
}

/// The sending half of a mailbox. Cloning adds another producer.
pub struct Sender {
    inner: Arc<Inner>,
}

/// The receiving half of a mailbox (single consumer).
pub struct Receiver {
    inner: Arc<Inner>,
}

fn new_inner(capacity: usize, mp: bool) -> Arc<Inner> {
    assert!(capacity > 0, "mailbox capacity must be positive");
    let one_lap = (capacity + 1).next_power_of_two();
    let buffer = (0..capacity)
        .map(|i| Slot {
            // Slot `i` is free for lap 0, i.e. for the claim `tail == i`.
            stamp: AtomicUsize::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    Arc::new(Inner {
        buffer,
        capacity,
        one_lap,
        head: CacheLine(AtomicUsize::new(0)),
        tail: CacheLine(AtomicUsize::new(0)),
        mp: AtomicBool::new(mp),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
        consumer_parked: AtomicBool::new(false),
        producers_parked: AtomicUsize::new(0),
        waiters: Mutex::new(Waiters {
            consumer: None,
            producers: Vec::new(),
        }),
        wake_hook: OnceLock::new(),
        stall_ns: AtomicU64::new(0),
    })
}

/// Creates a bounded BAS mailbox with the given capacity.
///
/// Producers claim ring slots with a CAS, so the sender may be cloned and
/// shared across threads freely (fan-in edges).
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel(capacity: usize) -> (Sender, Receiver) {
    let inner = new_inner(capacity, true);
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Creates a bounded BAS mailbox optimized for a single producer
/// (in-degree-1 edges, per the compiled `ActorGraph`): the sender advances
/// `tail` with a plain store instead of a CAS.
///
/// Cloning the sender permanently upgrades the mailbox to the multi-
/// producer (CAS) path, so the fast path is an optimization, never a
/// correctness constraint.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel_spsc(capacity: usize) -> (Sender, Receiver) {
    let inner = new_inner(capacity, false);
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl Clone for Sender {
    fn clone(&self) -> Self {
        // Upgrade to multi-producer before a second producer can exist: the
        // cloning thread sees this store in program order, and any other
        // thread can only receive the clone through a synchronizing handoff
        // (spawn/mutex/channel), which publishes it. Relaxed is therefore
        // sufficient.
        self.inner.mp.store(true, Ordering::Relaxed);
        // Relaxed: incrementing a producer count needs no ordering of its
        // own (the Arc-clone pattern); the handoff that shares the clone
        // publishes the increment.
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        // Release: orders this producer's final stamp stores before the
        // decrement, pairing with the consumer's Acquire load of the count
        // — once the consumer reads zero, every final push is visible.
        if self.inner.senders.fetch_sub(1, Ordering::Release) == 1 {
            // Last sender: wake a consumer waiting on an empty queue so it
            // can observe the disconnect.
            self.inner.wake_consumer();
        }
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        // Release pairs with the Acquire loads in the producers' blocking
        // loops and pre-park re-checks.
        self.inner.receiver_alive.store(false, Ordering::Release);
        self.inner.wake_producers();
    }
}

impl Sender {
    /// Sends with BAS semantics: if the mailbox is full, block until a slot
    /// frees up or `timeout` elapses (then the envelope is dropped and
    /// [`SendOutcome::TimedOut`] is returned).
    pub fn send(&self, env: Envelope, timeout: Duration) -> SendOutcome {
        if self.inner.try_push(env) {
            self.inner.wake_consumer();
            return SendOutcome::Sent;
        }
        // Backpressure path.
        let start = Instant::now();
        let deadline = start + timeout;
        let mut backoff = Backoff::new();
        loop {
            // Acquire pairs with the Release store in `Drop for Receiver`.
            if !self.inner.receiver_alive.load(Ordering::Acquire) {
                return SendOutcome::Disconnected;
            }
            if self.inner.try_push(env) {
                self.inner.wake_consumer();
                return SendOutcome::SentAfterBlocking(start.elapsed());
            }
            let now = Instant::now();
            if now >= deadline {
                return SendOutcome::TimedOut;
            }
            if !backoff.try_wait() {
                self.inner
                    .park_producer(deadline.saturating_duration_since(now));
            }
        }
    }

    /// Non-blocking send: enqueues if a slot is free, otherwise reports
    /// [`TrySend::Full`] (or [`TrySend::Disconnected`] once the receiver is
    /// gone) without waiting. The pool executor's flush loop uses this to
    /// trade blocking for running other ready actors.
    pub fn try_send(&self, env: Envelope) -> TrySend {
        if self.inner.try_push(env) {
            self.inner.wake_consumer();
            TrySend::Sent
        } else if !self.inner.receiver_alive.load(Ordering::Acquire) {
            TrySend::Disconnected
        } else {
            TrySend::Full
        }
    }

    /// Sends a whole batch in order with BAS semantics applied per slot.
    ///
    /// As many envelopes as fit are enqueued back-to-back; when the queue
    /// fills, the sender blocks until a slot frees — exactly as
    /// [`Sender::send`] would — and resumes pushing the remainder. Each
    /// envelope gets its own `timeout` window, so a batch is never dropped
    /// mid-way except by timeout (or a vanished receiver).
    ///
    /// The delivered prefix is drained out of `batch`; whatever remains in
    /// the buffer afterwards was **not** enqueued, and
    /// [`BatchOutcome::failure`] says why, so the caller can account for
    /// every undelivered envelope individually.
    ///
    /// With a single-envelope batch this performs the same ring operations
    /// in the same order as [`Sender::send`].
    pub fn send_batch(&self, batch: &mut Vec<Envelope>, timeout: Duration) -> BatchOutcome {
        let total = batch.len();
        let mut delivered = 0usize;
        let mut blocked = Duration::ZERO;
        let mut failure = None;
        'batch: while delivered < total {
            // Burst: enqueue everything that fits, then wake the consumer
            // once for the whole burst (it may be parked on an empty ring —
            // without this the batch would stall until the park timeout).
            let n = self.inner.push_burst(&batch[delivered..]);
            delivered += n;
            if n > 0 {
                self.inner.wake_consumer();
            }
            if delivered == total {
                break;
            }
            // Backpressure: block until a slot frees, per-slot timeout (the
            // window restarts whenever the burst above made progress).
            let start = Instant::now();
            let deadline = start + timeout;
            let mut backoff = Backoff::new();
            loop {
                // Acquire pairs with the Release store in `Drop for
                // Receiver`.
                if !self.inner.receiver_alive.load(Ordering::Acquire) {
                    failure = Some(BatchFailure::Disconnected);
                    break 'batch;
                }
                if self.inner.push_ready() {
                    blocked += start.elapsed();
                    continue 'batch;
                }
                let now = Instant::now();
                if now >= deadline {
                    // One final attempt before giving up, mirroring `send`.
                    if self.inner.push_ready() {
                        blocked += start.elapsed();
                        continue 'batch;
                    }
                    failure = Some(BatchFailure::TimedOut);
                    break 'batch;
                }
                if !backoff.try_wait() {
                    self.inner
                        .park_producer(deadline.saturating_duration_since(now));
                }
            }
        }
        if delivered > 0 {
            batch.drain(..delivered);
        }
        BatchOutcome {
            delivered,
            blocked,
            failure,
        }
    }

    /// Non-blocking batch send: enqueues the longest prefix that fits and
    /// returns immediately, draining the delivered prefix from `batch`.
    /// Never blocks and never drops — the caller decides whether to retry,
    /// run other work (pool executor), or time the remainder out.
    pub fn try_send_batch(&self, batch: &mut Vec<Envelope>) -> TryBatch {
        let n = self.inner.push_burst(&batch[..]);
        if n > 0 {
            self.inner.wake_consumer();
            batch.drain(..n);
        }
        TryBatch {
            delivered: n,
            // Acquire pairs with the Release store in `Drop for Receiver`.
            disconnected: !self.inner.receiver_alive.load(Ordering::Acquire),
        }
    }

    /// Charges `ns` nanoseconds of producer backpressure stall to this
    /// mailbox (the receiver-edge side of the sender's `blocked_ns`). The
    /// engine's flush path calls this once per blocked batch, so both the
    /// thread-per-actor and the pool send paths account identically.
    pub(crate) fn add_stall_ns(&self, ns: u64) {
        // Relaxed: a monotonic statistics counter, read only by the
        // sampler; no ordering with the data path is needed.
        self.inner.stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current queue length (approximate; for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// A passive observer of a mailbox's queue depth.
///
/// Unlike a cloned [`Sender`], a probe does not count as a producer, so
/// holding one does not delay disconnect detection on the receiver side —
/// the telemetry sampler can keep probes alive for the whole run without
/// perturbing termination. Creating a probe also does not upgrade an SPSC
/// mailbox to the CAS path.
pub struct DepthProbe {
    inner: Arc<Inner>,
}

impl DepthProbe {
    /// Current queue length (approximate; the queue is concurrently
    /// mutated).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Cumulative nanoseconds producers spent blocked on backpressure
    /// pushing into this mailbox — congestion charged to the *receiving*
    /// actor's inbox, the quantity the bottleneck attribution engine joins
    /// with utilization.
    pub fn stalled_ns(&self) -> u64 {
        self.inner.stall_ns.load(Ordering::Relaxed)
    }
}

impl Sender {
    /// Creates a passive depth probe on this mailbox.
    pub fn depth_probe(&self) -> DepthProbe {
        DepthProbe {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Receiver {
    /// Installs a wake callback invoked whenever a parked consumer would be
    /// woken: after data is pushed and when the last sender drops.
    ///
    /// The pool executor uses this to mark the owning actor task ready
    /// instead of keeping a thread parked in [`Receiver::recv`]; the hook
    /// must be cheap and must not touch the mailbox. Only the first call
    /// installs a hook; later calls are ignored.
    pub fn set_wake_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        let _ = self.inner.wake_hook.set(hook);
    }

    /// Blocks until an envelope is available or every sender is gone.
    pub fn recv(&self) -> RecvResult {
        let mut backoff = Backoff::new();
        loop {
            if let Some(env) = self.inner.try_pop() {
                self.inner.wake_producers();
                return RecvResult::Envelope(env);
            }
            // Acquire pairs with the Release decrement in `Drop for
            // Sender`: reading zero makes every final push visible, so the
            // drain below cannot miss data.
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                if let Some(env) = self.inner.try_pop() {
                    self.inner.wake_producers();
                    return RecvResult::Envelope(env);
                }
                return RecvResult::Disconnected;
            }
            if !backoff.try_wait() {
                self.inner.park_consumer(MAX_PARK);
            }
        }
    }

    /// Blocks like [`Receiver::recv`], then drains up to `max` envelopes
    /// into `buf`.
    ///
    /// Returns [`RecvBatch::Received`] with the number of envelopes
    /// appended (always ≥ 1), or [`RecvBatch::Disconnected`] once every
    /// sender is gone and the queue is drained. With `max == 1` this
    /// performs the same ring operations in the same order as
    /// [`Receiver::recv`].
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn recv_drain(&self, buf: &mut Vec<Envelope>, max: usize) -> RecvBatch {
        assert!(max > 0, "recv_drain max must be positive");
        let mut backoff = Backoff::new();
        loop {
            let n = self.inner.pop_burst(buf, max);
            if n > 0 {
                self.inner.wake_producers();
                return RecvBatch::Received(n);
            }
            // Acquire pairs with the Release decrement in `Drop for
            // Sender` (see `recv`).
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                let n = self.inner.pop_burst(buf, max);
                if n > 0 {
                    self.inner.wake_producers();
                    return RecvBatch::Received(n);
                }
                return RecvBatch::Disconnected;
            }
            if !backoff.try_wait() {
                self.inner.park_consumer(MAX_PARK);
            }
        }
    }

    /// Non-blocking drain of up to `max` envelopes into `buf`. The pool
    /// executor's run-until-blocked loop is built on this.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn try_drain(&self, buf: &mut Vec<Envelope>, max: usize) -> TryRecvBatch {
        assert!(max > 0, "try_drain max must be positive");
        let n = self.inner.pop_burst(buf, max);
        if n > 0 {
            self.inner.wake_producers();
            return TryRecvBatch::Received(n);
        }
        // Acquire pairs with the Release decrement in `Drop for Sender`
        // (see `recv`).
        if self.inner.senders.load(Ordering::Acquire) == 0 {
            let n = self.inner.pop_burst(buf, max);
            if n > 0 {
                self.inner.wake_producers();
                return TryRecvBatch::Received(n);
            }
            return TryRecvBatch::Disconnected;
        }
        TryRecvBatch::Empty
    }

    /// Non-blocking receive; `None` if the mailbox is momentarily empty.
    pub fn try_recv(&self) -> Option<Envelope> {
        let env = self.inner.try_pop();
        if env.is_some() {
            self.inner.wake_producers();
        }
        env
    }

    /// Current queue length (approximate).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A slab of recycled coalescing buffers shared by every actor in a run.
///
/// Each actor's delivery context keeps one `Vec<Envelope>` per *reachable*
/// destination; buffers are checked out of this pool at startup (already
/// sized to the batch limit) and returned when the actor finishes, so the
/// steady-state send path never grows a buffer: a flush hands the full
/// vector to the mailbox and gets the same allocation back, and capacity a
/// finished actor released is reused instead of allocated fresh.
///
/// The mutex is far off the hot path — it is taken once per buffer at actor
/// startup and shutdown, never per tuple or per flush.
pub struct BatchPool {
    free: Mutex<Vec<Vec<Envelope>>>,
    capacity: usize,
}

impl BatchPool {
    /// Creates a pool handing out buffers pre-sized to `capacity` envelopes
    /// (the engine's effective batch size; zero is bumped to one).
    pub fn new(capacity: usize) -> Self {
        BatchPool {
            free: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// The per-buffer capacity every checked-out buffer is pre-sized to.
    pub fn buffer_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffers currently resident in the freelist.
    pub fn available(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Checks a buffer out: a recycled one if the freelist has any, else a
    /// fresh allocation at full capacity.
    pub fn take(&self) -> Vec<Envelope> {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.capacity))
    }

    /// Returns `buf` to the freelist for the next [`take`](Self::take).
    /// Undersized buffers (never grown to the batch limit, or checked out
    /// of a differently-sized pool) are dropped rather than recycled so the
    /// pool's pre-sizing guarantee holds.
    pub fn give(&self, mut buf: Vec<Envelope>) {
        if buf.capacity() < self.capacity {
            return;
        }
        buf.clear();
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(seq: u64) -> Envelope {
        Envelope::Data(Tuple::splat(0, seq, 1.0))
    }

    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn batch_pool_recycles_buffers() {
        let pool = BatchPool::new(8);
        let mut a = pool.take();
        assert_eq!(a.capacity(), 8);
        a.push(item(1));
        let ptr = a.as_ptr();
        pool.give(a);
        assert_eq!(pool.available(), 1);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.as_ptr(), ptr, "give/take round-trips the same allocation");
        assert_eq!(pool.available(), 0);
        // Undersized buffers are dropped, not recycled: the pre-sizing
        // guarantee of `take` must hold for every resident buffer.
        pool.give(Vec::new());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn send_recv_fifo_order() {
        let (tx, rx) = channel(8);
        for i in 0..5 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
        }
        for i in 0..5 {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn full_mailbox_blocks_sender_until_slot_frees() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        assert_eq!(tx.send(item(1), LONG), SendOutcome::Sent);
        let handle = thread::spawn(move || tx.send(item(2), LONG));
        thread::sleep(Duration::from_millis(50));
        // The third send is still blocked; unblock it.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        let outcome = handle.join().unwrap();
        match outcome {
            SendOutcome::SentAfterBlocking(d) => {
                assert!(d >= Duration::from_millis(30), "blocked {d:?}")
            }
            other => panic!("expected blocking send, got {other:?}"),
        }
    }

    #[test]
    fn send_times_out_and_drops_item() {
        let (tx, _rx) = channel(1);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        let outcome = tx.send(item(1), Duration::from_millis(50));
        assert_eq!(outcome, SendOutcome::TimedOut);
        assert!(!outcome.delivered());
        // The queue still holds only the first item.
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn recv_blocks_until_item_arrives() {
        let (tx, rx) = channel(4);
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(30));
        assert_eq!(tx.send(item(7), LONG), SendOutcome::Sent);
        match handle.join().unwrap() {
            RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropping_all_senders_disconnects_receiver() {
        let (tx, rx) = channel(4);
        let tx2 = tx.clone();
        tx.send(item(0), LONG);
        drop(tx);
        drop(tx2);
        // Buffered item still delivered, then disconnect.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
    }

    #[test]
    fn dropping_receiver_unblocks_sender() {
        let (tx, rx) = channel(1);
        tx.send(item(0), LONG);
        let handle = thread::spawn(move || tx.send(item(1), LONG));
        thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(handle.join().unwrap(), SendOutcome::Disconnected);
    }

    #[test]
    fn multiple_producers_all_items_arrive() {
        let (tx, rx) = channel(4);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let txp = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    assert!(txp.send(item(p * 1000 + i), LONG).delivered());
                }
            }));
        }
        drop(tx);
        let mut got = 0;
        while let RecvResult::Envelope(_) = rx.recv() {
            got += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, 400);
    }

    #[test]
    fn eos_envelopes_pass_through() {
        let (tx, rx) = channel(2);
        tx.send(Envelope::Eos, LONG);
        assert_eq!(rx.recv(), RecvResult::Envelope(Envelope::Eos));
    }

    #[test]
    fn epoch_markers_keep_fifo_position() {
        // A marker between two data envelopes must arrive between them —
        // barrier alignment depends on this FIFO guarantee.
        let (tx, rx) = channel(8);
        tx.send(item(0), LONG);
        tx.send(Envelope::Epoch(1), LONG);
        tx.send(item(1), LONG);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_drain(&mut buf, 8), RecvBatch::Received(3));
        assert_eq!(buf[0], item(0));
        assert_eq!(buf[1], Envelope::Epoch(1));
        assert_eq!(buf[2], item(1));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel(2);
        assert_eq!(rx.try_recv(), None);
        tx.send(item(3), LONG);
        assert!(matches!(rx.try_recv(), Some(Envelope::Data(_))));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }

    #[test]
    fn depth_probe_observes_without_producing() {
        let (tx, rx) = channel(4);
        let probe = tx.depth_probe();
        assert!(probe.is_empty());
        assert_eq!(probe.capacity(), 4);
        tx.send(item(0), LONG);
        tx.send(item(1), LONG);
        assert_eq!(probe.len(), 2);
        // Dropping the only sender must still disconnect the receiver even
        // though the probe outlives it.
        drop(tx);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
        assert_eq!(probe.len(), 0);
    }

    #[test]
    fn stall_accounting_is_probe_visible() {
        let (tx, _rx) = channel(2);
        let probe = tx.depth_probe();
        assert_eq!(probe.stalled_ns(), 0);
        tx.add_stall_ns(1_500);
        tx.add_stall_ns(500);
        assert_eq!(probe.stalled_ns(), 2_000);
        // A cloned sender charges the same mailbox.
        tx.clone().add_stall_ns(1);
        assert_eq!(probe.stalled_ns(), 2_001);
    }

    #[test]
    fn capacity_and_len_reporting() {
        let (tx, rx) = channel(3);
        assert_eq!(tx.capacity(), 3);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(item(0), LONG);
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }

    #[test]
    fn send_batch_delivers_whole_batch_in_order() {
        let (tx, rx) = channel(16);
        let mut batch: Vec<Envelope> = (0..10).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 10);
        assert_eq!(outcome.blocked, Duration::ZERO);
        assert!(batch.is_empty(), "delivered prefix must be drained");
        for i in 0..10 {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn send_batch_larger_than_capacity_blocks_and_completes() {
        // The batch (20) far exceeds capacity (4): delivery must make
        // progress by waking the consumer mid-batch, not deadlock.
        let (tx, rx) = channel(4);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                match rx.recv_drain(&mut buf, 8) {
                    RecvBatch::Received(_) => {
                        for env in buf.drain(..) {
                            if let Envelope::Data(t) = env {
                                got.push(t.seq);
                            }
                        }
                        // Slow consumer: force the sender onto the
                        // backpressure path repeatedly.
                        thread::sleep(Duration::from_millis(5));
                    }
                    RecvBatch::Disconnected => return got,
                }
            }
        });
        let mut batch: Vec<Envelope> = (0..20).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 20);
        assert!(outcome.blocked > Duration::ZERO);
        assert!(batch.is_empty());
        drop(tx);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_partial_delivery_on_timeout_keeps_suffix() {
        let (tx, _rx) = channel(3);
        let mut batch: Vec<Envelope> = (0..8).map(item).collect();
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(50));
        assert_eq!(outcome.delivered, 3);
        assert_eq!(outcome.failure, Some(BatchFailure::TimedOut));
        assert!(!outcome.complete());
        // The undelivered suffix stays in the caller's buffer, in order.
        assert_eq!(batch.len(), 5);
        match batch[0] {
            Envelope::Data(t) => assert_eq!(t.seq, 3),
            Envelope::Epoch(_) | Envelope::Eos | Envelope::Handoff(_) => panic!("expected data"),
        }
    }

    #[test]
    fn send_batch_to_dropped_receiver_reports_disconnected() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        assert_eq!(tx.send(item(1), LONG), SendOutcome::Sent);
        drop(rx);
        let mut batch: Vec<Envelope> = (2..6).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert_eq!(outcome.delivered, 0);
        assert_eq!(outcome.failure, Some(BatchFailure::Disconnected));
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn send_batch_empty_is_a_noop() {
        let (tx, rx) = channel(2);
        let mut batch = Vec::new();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 0);
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_drain_caps_at_max_and_drains_in_order() {
        let (tx, rx) = channel(16);
        for i in 0..10 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_drain(&mut buf, 4), RecvBatch::Received(4));
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Received(6));
        let seqs: Vec<u64> = buf
            .iter()
            .map(|e| match e {
                Envelope::Data(t) => t.seq,
                Envelope::Epoch(_) | Envelope::Eos | Envelope::Handoff(_) => {
                    panic!("expected data")
                }
            })
            .collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_drain_blocks_until_item_arrives() {
        let (tx, rx) = channel(4);
        let handle = thread::spawn(move || {
            let mut buf = Vec::new();
            let res = rx.recv_drain(&mut buf, 8);
            (res, buf)
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(tx.send(item(7), LONG), SendOutcome::Sent);
        let (res, buf) = handle.join().unwrap();
        assert_eq!(res, RecvBatch::Received(1));
        assert_eq!(buf, vec![item(7)]);
    }

    #[test]
    fn recv_drain_disconnects_after_draining() {
        let (tx, rx) = channel(8);
        tx.send(item(0), LONG);
        tx.send(Envelope::Eos, LONG);
        drop(tx);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Received(2));
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Disconnected);
    }

    #[test]
    fn eos_after_partial_batch_stays_ordered() {
        // A producer whose data batch only partially fits must still get
        // its EOS delivered *after* the remainder of the batch: the
        // undelivered suffix stays in the caller's buffer and is re-sent
        // before EOS, and FIFO order guarantees no reordering.
        let (tx, rx) = channel(2);
        let mut batch: Vec<Envelope> = (0..5).map(item).collect();
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(40));
        assert_eq!(outcome.delivered, 2);
        assert_eq!(batch.len(), 3);
        // Consumer frees space; producer finishes the suffix then EOS.
        let producer = thread::spawn(move || {
            let out = tx.send_batch(&mut batch, LONG);
            assert!(out.complete());
            assert_eq!(tx.send(Envelope::Eos, LONG), SendOutcome::Sent);
        });
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        while let RecvBatch::Received(_) = rx.recv_drain(&mut buf, 4) {
            seen.append(&mut buf);
            if seen.last() == Some(&Envelope::Eos) {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        producer.join().unwrap();
        let mut expect: Vec<Envelope> = (0..5).map(item).collect();
        expect.push(Envelope::Eos);
        assert_eq!(seen, expect);
    }

    #[test]
    fn multi_producer_batch_backpressure_stress() {
        // Several producers push large batches through a tiny mailbox
        // concurrently; every envelope must arrive exactly once and each
        // producer's own sequence must stay in order (FIFO per producer).
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let (tx, rx) = channel(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                let mut sent = 0;
                while sent < PER_PRODUCER {
                    let end = (sent + 32).min(PER_PRODUCER);
                    let mut batch: Vec<Envelope> = (sent..end)
                        .map(|i| Envelope::Data(Tuple::splat(p, i, 1.0)))
                        .collect();
                    let outcome = tx.send_batch(&mut batch, LONG);
                    assert!(outcome.complete(), "stress send failed: {outcome:?}");
                    sent = end;
                }
            }));
        }
        drop(tx);
        let mut per_key: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
        let mut buf = Vec::new();
        while let RecvBatch::Received(_) = rx.recv_drain(&mut buf, 16) {
            for env in buf.drain(..) {
                if let Envelope::Data(t) = env {
                    per_key[t.key as usize].push(t.seq);
                }
            }
        }
        for handle in handles {
            handle.join().unwrap();
        }
        for seqs in &per_key {
            assert_eq!(seqs, &(0..PER_PRODUCER).collect::<Vec<_>>());
        }
    }

    #[test]
    fn send_batch_of_one_matches_send_semantics() {
        let (tx, rx) = channel(1);
        let mut batch = vec![item(0)];
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 1);
        // Queue full: a 1-batch times out exactly like a single send.
        let mut batch = vec![item(1)];
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(40));
        assert_eq!(outcome.failure, Some(BatchFailure::TimedOut));
        assert_eq!(outcome.delivered, 0);
        assert_eq!(batch.len(), 1);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
    }

    #[test]
    fn spsc_channel_preserves_fifo_under_backpressure() {
        // Single producer over the plain-store tail path, tiny capacity so
        // the ring wraps laps constantly.
        let (tx, rx) = channel_spsc(3);
        let producer = thread::spawn(move || {
            for i in 0..2_000u64 {
                assert!(tx.send(item(i), LONG).delivered());
            }
        });
        let mut next = 0u64;
        let mut buf = Vec::new();
        while let RecvBatch::Received(_) = rx.recv_drain(&mut buf, 8) {
            for env in buf.drain(..) {
                match env {
                    Envelope::Data(t) => {
                        assert_eq!(t.seq, next);
                        next += 1;
                    }
                    Envelope::Epoch(_) | Envelope::Eos | Envelope::Handoff(_) => {
                        panic!("expected data")
                    }
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(next, 2_000);
    }

    #[test]
    fn spsc_clone_upgrades_to_multi_producer() {
        // Cloning an SPSC sender must make concurrent producers safe: all
        // items arrive exactly once, FIFO per producer.
        let (tx, rx) = channel_spsc(4);
        let tx2 = tx.clone();
        let mk = |p: u64, tx: Sender| {
            thread::spawn(move || {
                for i in 0..500u64 {
                    assert!(tx
                        .send(Envelope::Data(Tuple::splat(p, i, 1.0)), LONG)
                        .delivered());
                }
            })
        };
        let h1 = mk(0, tx);
        let h2 = mk(1, tx2);
        let mut per_key: Vec<Vec<u64>> = vec![Vec::new(); 2];
        loop {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => per_key[t.key as usize].push(t.seq),
                RecvResult::Envelope(_) => panic!("expected data"),
                RecvResult::Disconnected => break,
            }
        }
        h1.join().unwrap();
        h2.join().unwrap();
        for seqs in &per_key {
            assert_eq!(seqs, &(0..500).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn spsc_zero_capacity_rejected() {
        let _ = channel_spsc(0);
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        let (tx, rx) = channel(1);
        assert_eq!(tx.try_send(item(0)), TrySend::Sent);
        assert_eq!(tx.try_send(item(1)), TrySend::Full);
        assert_eq!(tx.len(), 1);
        drop(rx);
        assert_eq!(tx.try_send(item(2)), TrySend::Disconnected);
    }

    #[test]
    fn try_send_batch_delivers_prefix_without_blocking() {
        let (tx, rx) = channel(3);
        let mut batch: Vec<Envelope> = (0..5).map(item).collect();
        let out = tx.try_send_batch(&mut batch);
        assert_eq!(out.delivered, 3);
        assert!(!out.disconnected);
        // The suffix stays in the caller's buffer, in order.
        assert_eq!(batch.len(), 2);
        match batch[0] {
            Envelope::Data(t) => assert_eq!(t.seq, 3),
            Envelope::Epoch(_) | Envelope::Eos | Envelope::Handoff(_) => panic!("expected data"),
        }
        drop(rx);
        let out = tx.try_send_batch(&mut batch);
        assert_eq!(out.delivered, 0);
        assert!(out.disconnected);
    }

    #[test]
    fn try_drain_reports_empty_then_data_then_disconnected() {
        let (tx, rx) = channel(8);
        let mut buf = Vec::new();
        assert_eq!(rx.try_drain(&mut buf, 4), TryRecvBatch::Empty);
        for i in 0..6 {
            tx.send(item(i), LONG);
        }
        assert_eq!(rx.try_drain(&mut buf, 4), TryRecvBatch::Received(4));
        assert_eq!(rx.try_drain(&mut buf, 4), TryRecvBatch::Received(2));
        assert_eq!(buf.len(), 6);
        drop(tx);
        assert_eq!(rx.try_drain(&mut buf, 4), TryRecvBatch::Disconnected);
    }

    #[test]
    fn wake_hook_fires_on_push_and_final_sender_drop() {
        let (tx, rx) = channel(4);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_count = Arc::clone(&fired);
        rx.set_wake_hook(Arc::new(move || {
            hook_count.fetch_add(1, Ordering::SeqCst);
        }));
        tx.send(item(0), LONG);
        assert!(fired.load(Ordering::SeqCst) >= 1);
        let before_drop = fired.load(Ordering::SeqCst);
        drop(tx);
        // Last-sender drop must also fire the hook so a pooled consumer
        // gets scheduled to observe the disconnect.
        assert!(fired.load(Ordering::SeqCst) > before_drop);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
    }

    #[test]
    fn try_send_unblocks_blocked_batch_consumer() {
        // A producer parked mid-send_batch must be woken by a consumer
        // using only non-blocking drains (the pool executor's drain path).
        let (tx, rx) = channel(2);
        let producer = thread::spawn(move || {
            let mut batch: Vec<Envelope> = (0..10).map(item).collect();
            tx.send_batch(&mut batch, LONG)
        });
        thread::sleep(Duration::from_millis(20));
        let mut got = 0;
        let mut buf = Vec::new();
        while got < 10 {
            match rx.try_drain(&mut buf, 4) {
                TryRecvBatch::Received(n) => {
                    got += n;
                    buf.clear();
                }
                TryRecvBatch::Empty => thread::yield_now(),
                TryRecvBatch::Disconnected => break,
            }
        }
        let outcome = producer.join().unwrap();
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 10);
        assert_eq!(got, 10);
    }

    #[test]
    fn capacity_one_wraps_many_laps() {
        // Exercises lap arithmetic at the smallest ring size.
        let (tx, rx) = channel(1);
        for i in 0..100 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
