//! Bounded blocking mailboxes with Blocking-After-Service semantics.
//!
//! The paper's cost models assume streams implemented as fixed-capacity FIFO
//! buffers where "when an output item attempts to enter into a full queue,
//! that item is blocked until a free slot becomes available" (§3, BAS). The
//! Akka evaluation uses `BoundedMailbox` with a send timeout after which the
//! item is discarded (§5.1); [`Sender::send`] reproduces both behaviors.

use spinstreams_core::Tuple;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mailbox mutex, recovering from poisoning.
///
/// A mailbox lock is only ever held inside this module for queue
/// manipulation, so a poisoned lock means a foreign panic (e.g. OOM abort
/// path) interrupted a push/pop; the queue itself is still structurally
/// sound and the supervised engine must keep running.
fn lock_queue(m: &Mutex<VecDeque<Envelope>>) -> MutexGuard<'_, VecDeque<Envelope>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A message in an actor's mailbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// A stream item.
    Data(Tuple),
    /// End-of-stream marker; one is sent by each upstream sender when it
    /// finishes.
    Eos,
}

/// Outcome of a send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The envelope was enqueued without waiting.
    Sent,
    /// The envelope was enqueued after blocking for the given duration
    /// (backpressure).
    SentAfterBlocking(Duration),
    /// The send timeout elapsed with the mailbox still full; the envelope
    /// was dropped (Akka's bounded-mailbox `pushTimeOut` behavior).
    TimedOut,
    /// The receiver is gone; the envelope was discarded.
    Disconnected,
}

impl SendOutcome {
    /// True if the envelope was delivered.
    pub fn delivered(self) -> bool {
        matches!(self, SendOutcome::Sent | SendOutcome::SentAfterBlocking(_))
    }

    /// Time spent blocked on backpressure, if any.
    pub fn blocked_for(self) -> Duration {
        match self {
            SendOutcome::SentAfterBlocking(d) => d,
            _ => Duration::ZERO,
        }
    }
}

/// Why a batched send stopped before delivering every envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFailure {
    /// The per-slot send timeout elapsed with the mailbox still full; the
    /// envelope at `delivered` (and everything after it) was not enqueued.
    TimedOut,
    /// The receiver is gone; the remaining envelopes cannot be delivered.
    Disconnected,
}

/// Outcome of a [`Sender::send_batch`] call.
///
/// Delivery is always a *prefix* of the batch, in order: BAS semantics hold
/// per slot, so a full queue blocks the remainder of the batch rather than
/// dropping envelopes mid-batch. Only a timeout (or a vanished receiver)
/// terminates delivery early, and then every undelivered envelope stays in
/// the caller's buffer for per-envelope accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Number of envelopes enqueued (the delivered prefix).
    pub delivered: usize,
    /// Total time spent blocked on backpressure while delivering the
    /// prefix. Zero when every slot was free immediately.
    pub blocked: Duration,
    /// Why delivery stopped before the end of the batch (`None` = the whole
    /// batch was delivered).
    pub failure: Option<BatchFailure>,
}

impl BatchOutcome {
    /// True if every envelope of the batch was enqueued.
    pub fn complete(&self) -> bool {
        self.failure.is_none()
    }
}

/// Outcome of a blocking receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvResult {
    /// An envelope was dequeued.
    Envelope(Envelope),
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

/// Outcome of a [`Receiver::recv_drain`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvBatch {
    /// This many envelopes were appended to the caller's buffer (≥ 1).
    Received(usize),
    /// All senders are gone and the mailbox is drained.
    Disconnected,
}

struct Inner {
    queue: Mutex<VecDeque<Envelope>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    senders: AtomicUsize,
    receiver_alive: AtomicUsize,
}

/// The sending half of a mailbox. Cloning adds another producer.
pub struct Sender {
    inner: Arc<Inner>,
}

/// The receiving half of a mailbox (single consumer).
pub struct Receiver {
    inner: Arc<Inner>,
}

/// Creates a bounded BAS mailbox with the given capacity.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel(capacity: usize) -> (Sender, Receiver) {
    assert!(capacity > 0, "mailbox capacity must be positive");
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl Clone for Sender {
    fn clone(&self) -> Self {
        // Relaxed: incrementing a producer count needs no ordering of its
        // own (the Arc-clone pattern). Handing the clone to another thread
        // necessarily goes through some synchronization (a spawn, a mutex),
        // which publishes the increment before that thread can drop it.
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        // Release: orders this producer's final queue writes before the
        // decrement. The receiver only acts on `senders == 0` while holding
        // the queue mutex, and the last dropper reacquires that mutex below,
        // so the mutex's acquire/release pairing makes the store visible to
        // the wakeup path — SeqCst buys nothing extra here.
        if self.inner.senders.fetch_sub(1, Ordering::Release) == 1 {
            // Last sender: wake a receiver waiting on an empty queue.
            let _guard = lock_queue(&self.inner.queue);
            self.inner.not_empty.notify_all();
        }
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        // Release paired with the Acquire loads in the senders' blocking
        // loops: a sender woken by the notify below reacquires the queue
        // mutex first, which already synchronizes-with this critical
        // section; Release/Acquire on the flag itself covers the unlocked
        // fast-path read.
        self.inner.receiver_alive.store(0, Ordering::Release);
        let _guard = lock_queue(&self.inner.queue);
        self.inner.not_full.notify_all();
    }
}

impl Sender {
    /// Sends with BAS semantics: if the mailbox is full, block until a slot
    /// frees up or `timeout` elapses (then the envelope is dropped and
    /// [`SendOutcome::TimedOut`] is returned).
    pub fn send(&self, env: Envelope, timeout: Duration) -> SendOutcome {
        let mut queue = lock_queue(&self.inner.queue);
        if queue.len() < self.inner.capacity {
            queue.push_back(env);
            drop(queue);
            self.inner.not_empty.notify_one();
            return SendOutcome::Sent;
        }
        // Backpressure path.
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            // Acquire pairs with the Release store in `Drop for Receiver`.
            if self.inner.receiver_alive.load(Ordering::Acquire) == 0 {
                return SendOutcome::Disconnected;
            }
            if queue.len() < self.inner.capacity {
                queue.push_back(env);
                drop(queue);
                self.inner.not_empty.notify_one();
                return SendOutcome::SentAfterBlocking(start.elapsed());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, wait) = self
                .inner
                .not_full
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if wait.timed_out() {
                return if queue.len() < self.inner.capacity {
                    queue.push_back(env);
                    drop(queue);
                    self.inner.not_empty.notify_one();
                    SendOutcome::SentAfterBlocking(start.elapsed())
                } else {
                    SendOutcome::TimedOut
                };
            }
        }
    }

    /// Sends a whole batch under (at most) one lock acquisition per burst,
    /// in order, with BAS semantics applied per slot.
    ///
    /// As many envelopes as fit are enqueued while holding the lock once;
    /// when the queue fills, the sender blocks until a slot frees — exactly
    /// as [`Sender::send`] would — and resumes pushing the remainder. Each
    /// envelope gets its own `timeout` window, so a batch is never dropped
    /// mid-way except by timeout (or a vanished receiver).
    ///
    /// The delivered prefix is drained out of `batch`; whatever remains in
    /// the buffer afterwards was **not** enqueued, and
    /// [`BatchOutcome::failure`] says why, so the caller can account for
    /// every undelivered envelope individually.
    ///
    /// With a single-envelope batch this performs the same queue/notify
    /// operations in the same order as [`Sender::send`].
    pub fn send_batch(&self, batch: &mut Vec<Envelope>, timeout: Duration) -> BatchOutcome {
        let total = batch.len();
        let mut delivered = 0usize;
        let mut blocked = Duration::ZERO;
        let mut failure = None;
        let mut queue = lock_queue(&self.inner.queue);
        'batch: while delivered < total {
            // Burst: enqueue everything that fits under this lock hold.
            while delivered < total && queue.len() < self.inner.capacity {
                queue.push_back(batch[delivered]);
                delivered += 1;
            }
            if delivered == total {
                break;
            }
            // Backpressure: wake the consumer for what we already pushed
            // (it may be parked on `not_empty` — without this it would
            // never drain the queue and the batch would deadlock), then
            // block until a slot frees, per-slot timeout.
            if delivered > 0 {
                self.inner.not_empty.notify_one();
            }
            let start = Instant::now();
            let deadline = start + timeout;
            loop {
                // Acquire pairs with the Release store in `Drop for
                // Receiver`.
                if self.inner.receiver_alive.load(Ordering::Acquire) == 0 {
                    failure = Some(BatchFailure::Disconnected);
                    break 'batch;
                }
                if queue.len() < self.inner.capacity {
                    blocked += start.elapsed();
                    continue 'batch;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                let (guard, wait) = self
                    .inner
                    .not_full
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                if wait.timed_out() {
                    if queue.len() < self.inner.capacity {
                        blocked += start.elapsed();
                        continue 'batch;
                    }
                    failure = Some(BatchFailure::TimedOut);
                    break 'batch;
                }
            }
        }
        drop(queue);
        if delivered > 0 {
            self.inner.not_empty.notify_one();
            batch.drain(..delivered);
        }
        BatchOutcome {
            delivered,
            blocked,
            failure,
        }
    }

    /// Current queue length (approximate; for tests and diagnostics).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

/// A passive observer of a mailbox's queue depth.
///
/// Unlike a cloned [`Sender`], a probe does not count as a producer, so
/// holding one does not delay disconnect detection on the receiver side —
/// the telemetry sampler can keep probes alive for the whole run without
/// perturbing termination.
pub struct DepthProbe {
    inner: Arc<Inner>,
}

impl DepthProbe {
    /// Current queue length (approximate; the queue is concurrently
    /// mutated).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mailbox capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

impl Sender {
    /// Creates a passive depth probe on this mailbox.
    pub fn depth_probe(&self) -> DepthProbe {
        DepthProbe {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Receiver {
    /// Blocks until an envelope is available or every sender is gone.
    pub fn recv(&self) -> RecvResult {
        let mut queue = lock_queue(&self.inner.queue);
        loop {
            if let Some(env) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return RecvResult::Envelope(env);
            }
            // Acquire pairs with the Release decrement in `Drop for Sender`;
            // this read happens under the queue mutex, which the last
            // dropper also takes before notifying, so the sender's final
            // pushes are already visible once the count reads zero.
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return RecvResult::Disconnected;
            }
            queue = self
                .inner
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks like [`Receiver::recv`], then drains up to `max` envelopes
    /// into `buf` under a single lock acquisition.
    ///
    /// Returns [`RecvBatch::Received`] with the number of envelopes
    /// appended (always ≥ 1), or [`RecvBatch::Disconnected`] once every
    /// sender is gone and the queue is drained. With `max == 1` this
    /// performs the same queue/notify operations in the same order as
    /// [`Receiver::recv`].
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn recv_drain(&self, buf: &mut Vec<Envelope>, max: usize) -> RecvBatch {
        assert!(max > 0, "recv_drain max must be positive");
        let mut queue = lock_queue(&self.inner.queue);
        loop {
            if !queue.is_empty() {
                let take = queue.len().min(max);
                buf.extend(queue.drain(..take));
                drop(queue);
                if take == 1 {
                    self.inner.not_full.notify_one();
                } else {
                    // More than one slot freed: several producers may be
                    // blocked mid-batch, wake them all.
                    self.inner.not_full.notify_all();
                }
                return RecvBatch::Received(take);
            }
            // Acquire pairs with the Release decrement in `Drop for Sender`
            // (see `recv` above).
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return RecvBatch::Disconnected;
            }
            queue = self
                .inner
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive; `None` if the mailbox is momentarily empty.
    pub fn try_recv(&self) -> Option<Envelope> {
        let mut queue = lock_queue(&self.inner.queue);
        let env = queue.pop_front();
        if env.is_some() {
            drop(queue);
            self.inner.not_full.notify_one();
        }
        env
    }

    /// Current queue length (approximate).
    pub fn len(&self) -> usize {
        lock_queue(&self.inner.queue).len()
    }

    /// True if the queue is currently empty (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(seq: u64) -> Envelope {
        Envelope::Data(Tuple::splat(0, seq, 1.0))
    }

    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn send_recv_fifo_order() {
        let (tx, rx) = channel(8);
        for i in 0..5 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
        }
        for i in 0..5 {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn full_mailbox_blocks_sender_until_slot_frees() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        assert_eq!(tx.send(item(1), LONG), SendOutcome::Sent);
        let handle = thread::spawn(move || tx.send(item(2), LONG));
        thread::sleep(Duration::from_millis(50));
        // The third send is still blocked; unblock it.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        let outcome = handle.join().unwrap();
        match outcome {
            SendOutcome::SentAfterBlocking(d) => {
                assert!(d >= Duration::from_millis(30), "blocked {d:?}")
            }
            other => panic!("expected blocking send, got {other:?}"),
        }
    }

    #[test]
    fn send_times_out_and_drops_item() {
        let (tx, _rx) = channel(1);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        let outcome = tx.send(item(1), Duration::from_millis(50));
        assert_eq!(outcome, SendOutcome::TimedOut);
        assert!(!outcome.delivered());
        // The queue still holds only the first item.
        assert_eq!(tx.len(), 1);
    }

    #[test]
    fn recv_blocks_until_item_arrives() {
        let (tx, rx) = channel(4);
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(30));
        assert_eq!(tx.send(item(7), LONG), SendOutcome::Sent);
        match handle.join().unwrap() {
            RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropping_all_senders_disconnects_receiver() {
        let (tx, rx) = channel(4);
        let tx2 = tx.clone();
        tx.send(item(0), LONG);
        drop(tx);
        drop(tx2);
        // Buffered item still delivered, then disconnect.
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
    }

    #[test]
    fn dropping_receiver_unblocks_sender() {
        let (tx, rx) = channel(1);
        tx.send(item(0), LONG);
        let handle = thread::spawn(move || tx.send(item(1), LONG));
        thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(handle.join().unwrap(), SendOutcome::Disconnected);
    }

    #[test]
    fn multiple_producers_all_items_arrive() {
        let (tx, rx) = channel(4);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let txp = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    assert!(txp.send(item(p * 1000 + i), LONG).delivered());
                }
            }));
        }
        drop(tx);
        let mut got = 0;
        while let RecvResult::Envelope(_) = rx.recv() {
            got += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, 400);
    }

    #[test]
    fn eos_envelopes_pass_through() {
        let (tx, rx) = channel(2);
        tx.send(Envelope::Eos, LONG);
        assert_eq!(rx.recv(), RecvResult::Envelope(Envelope::Eos));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel(2);
        assert_eq!(rx.try_recv(), None);
        tx.send(item(3), LONG);
        assert!(matches!(rx.try_recv(), Some(Envelope::Data(_))));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel(0);
    }

    #[test]
    fn depth_probe_observes_without_producing() {
        let (tx, rx) = channel(4);
        let probe = tx.depth_probe();
        assert!(probe.is_empty());
        assert_eq!(probe.capacity(), 4);
        tx.send(item(0), LONG);
        tx.send(item(1), LONG);
        assert_eq!(probe.len(), 2);
        // Dropping the only sender must still disconnect the receiver even
        // though the probe outlives it.
        drop(tx);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
        assert_eq!(rx.recv(), RecvResult::Disconnected);
        assert_eq!(probe.len(), 0);
    }

    #[test]
    fn capacity_and_len_reporting() {
        let (tx, rx) = channel(3);
        assert_eq!(tx.capacity(), 3);
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(item(0), LONG);
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }

    #[test]
    fn send_batch_delivers_whole_batch_in_order() {
        let (tx, rx) = channel(16);
        let mut batch: Vec<Envelope> = (0..10).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 10);
        assert_eq!(outcome.blocked, Duration::ZERO);
        assert!(batch.is_empty(), "delivered prefix must be drained");
        for i in 0..10 {
            match rx.recv() {
                RecvResult::Envelope(Envelope::Data(t)) => assert_eq!(t.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn send_batch_larger_than_capacity_blocks_and_completes() {
        // The batch (20) far exceeds capacity (4): delivery must make
        // progress by waking the consumer mid-batch, not deadlock.
        let (tx, rx) = channel(4);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                match rx.recv_drain(&mut buf, 8) {
                    RecvBatch::Received(_) => {
                        for env in buf.drain(..) {
                            if let Envelope::Data(t) = env {
                                got.push(t.seq);
                            }
                        }
                        // Slow consumer: force the sender onto the
                        // backpressure path repeatedly.
                        thread::sleep(Duration::from_millis(5));
                    }
                    RecvBatch::Disconnected => return got,
                }
            }
        });
        let mut batch: Vec<Envelope> = (0..20).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 20);
        assert!(outcome.blocked > Duration::ZERO);
        assert!(batch.is_empty());
        drop(tx);
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn send_batch_partial_delivery_on_timeout_keeps_suffix() {
        let (tx, _rx) = channel(3);
        let mut batch: Vec<Envelope> = (0..8).map(item).collect();
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(50));
        assert_eq!(outcome.delivered, 3);
        assert_eq!(outcome.failure, Some(BatchFailure::TimedOut));
        assert!(!outcome.complete());
        // The undelivered suffix stays in the caller's buffer, in order.
        assert_eq!(batch.len(), 5);
        match batch[0] {
            Envelope::Data(t) => assert_eq!(t.seq, 3),
            Envelope::Eos => panic!("expected data"),
        }
    }

    #[test]
    fn send_batch_to_dropped_receiver_reports_disconnected() {
        let (tx, rx) = channel(2);
        assert_eq!(tx.send(item(0), LONG), SendOutcome::Sent);
        assert_eq!(tx.send(item(1), LONG), SendOutcome::Sent);
        drop(rx);
        let mut batch: Vec<Envelope> = (2..6).map(item).collect();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert_eq!(outcome.delivered, 0);
        assert_eq!(outcome.failure, Some(BatchFailure::Disconnected));
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn send_batch_empty_is_a_noop() {
        let (tx, rx) = channel(2);
        let mut batch = Vec::new();
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 0);
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_drain_caps_at_max_and_drains_in_order() {
        let (tx, rx) = channel(16);
        for i in 0..10 {
            assert_eq!(tx.send(item(i), LONG), SendOutcome::Sent);
        }
        let mut buf = Vec::new();
        assert_eq!(rx.recv_drain(&mut buf, 4), RecvBatch::Received(4));
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Received(6));
        let seqs: Vec<u64> = buf
            .iter()
            .map(|e| match e {
                Envelope::Data(t) => t.seq,
                Envelope::Eos => panic!("unexpected EOS"),
            })
            .collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_drain_blocks_until_item_arrives() {
        let (tx, rx) = channel(4);
        let handle = thread::spawn(move || {
            let mut buf = Vec::new();
            let res = rx.recv_drain(&mut buf, 8);
            (res, buf)
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(tx.send(item(7), LONG), SendOutcome::Sent);
        let (res, buf) = handle.join().unwrap();
        assert_eq!(res, RecvBatch::Received(1));
        assert_eq!(buf, vec![item(7)]);
    }

    #[test]
    fn recv_drain_disconnects_after_draining() {
        let (tx, rx) = channel(8);
        tx.send(item(0), LONG);
        tx.send(Envelope::Eos, LONG);
        drop(tx);
        let mut buf = Vec::new();
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Received(2));
        assert_eq!(rx.recv_drain(&mut buf, 64), RecvBatch::Disconnected);
    }

    #[test]
    fn eos_after_partial_batch_stays_ordered() {
        // A producer whose data batch only partially fits must still get
        // its EOS delivered *after* the remainder of the batch: the
        // undelivered suffix stays in the caller's buffer and is re-sent
        // before EOS, and FIFO order guarantees no reordering.
        let (tx, rx) = channel(2);
        let mut batch: Vec<Envelope> = (0..5).map(item).collect();
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(40));
        assert_eq!(outcome.delivered, 2);
        assert_eq!(batch.len(), 3);
        // Consumer frees space; producer finishes the suffix then EOS.
        let producer = thread::spawn(move || {
            let out = tx.send_batch(&mut batch, LONG);
            assert!(out.complete());
            assert_eq!(tx.send(Envelope::Eos, LONG), SendOutcome::Sent);
        });
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        while let RecvBatch::Received(_) = rx.recv_drain(&mut buf, 4) {
            seen.append(&mut buf);
            if seen.last() == Some(&Envelope::Eos) {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        producer.join().unwrap();
        let mut expect: Vec<Envelope> = (0..5).map(item).collect();
        expect.push(Envelope::Eos);
        assert_eq!(seen, expect);
    }

    #[test]
    fn multi_producer_batch_backpressure_stress() {
        // Several producers push large batches through a tiny mailbox
        // concurrently; every envelope must arrive exactly once and each
        // producer's own sequence must stay in order (FIFO per producer).
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let (tx, rx) = channel(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                let mut sent = 0;
                while sent < PER_PRODUCER {
                    let end = (sent + 32).min(PER_PRODUCER);
                    let mut batch: Vec<Envelope> = (sent..end)
                        .map(|i| Envelope::Data(Tuple::splat(p, i, 1.0)))
                        .collect();
                    let outcome = tx.send_batch(&mut batch, LONG);
                    assert!(outcome.complete(), "stress send failed: {outcome:?}");
                    sent = end;
                }
            }));
        }
        drop(tx);
        let mut per_key: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
        let mut buf = Vec::new();
        while let RecvBatch::Received(_) = rx.recv_drain(&mut buf, 16) {
            for env in buf.drain(..) {
                if let Envelope::Data(t) = env {
                    per_key[t.key as usize].push(t.seq);
                }
            }
        }
        for handle in handles {
            handle.join().unwrap();
        }
        for seqs in &per_key {
            assert_eq!(seqs, &(0..PER_PRODUCER).collect::<Vec<_>>());
        }
    }

    #[test]
    fn send_batch_of_one_matches_send_semantics() {
        let (tx, rx) = channel(1);
        let mut batch = vec![item(0)];
        let outcome = tx.send_batch(&mut batch, LONG);
        assert!(outcome.complete());
        assert_eq!(outcome.delivered, 1);
        // Queue full: a 1-batch times out exactly like a single send.
        let mut batch = vec![item(1)];
        let outcome = tx.send_batch(&mut batch, Duration::from_millis(40));
        assert_eq!(outcome.failure, Some(BatchFailure::TimedOut));
        assert_eq!(outcome.delivered, 0);
        assert_eq!(batch.len(), 1);
        assert!(matches!(rx.recv(), RecvResult::Envelope(_)));
    }
}
