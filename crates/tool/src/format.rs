//! Plain-text rendering of experiment results (the bench binaries' output).

use crate::Comparison;
use std::fmt::Write as _;

/// Renders one or more named series as an aligned text table with a
/// trailing ASCII bar for the first series — the form the figure binaries
/// print (one row per topology/operator).
///
/// `labels` names the rows; each series must have one value per row.
///
/// # Panics
///
/// Panics if series lengths do not match `labels`.
pub fn ascii_series(title: &str, labels: &[String], series: &[(&str, Vec<f64>)]) -> String {
    for (name, values) in series {
        assert_eq!(values.len(), labels.len(), "series {name} length mismatch");
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(5).max(5);
    let _ = write!(out, "{:<label_w$}", "");
    for (name, _) in series {
        let _ = write!(out, " {name:>14}");
    }
    let _ = writeln!(out);
    let max = series
        .first()
        .map(|(_, v)| v.iter().cloned().fold(0.0, f64::max))
        .unwrap_or(0.0);
    for (i, label) in labels.iter().enumerate() {
        let _ = write!(out, "{label:<label_w$}");
        for (_, values) in series {
            let _ = write!(out, " {:>14.3}", values[i]);
        }
        if max > 0.0 {
            let bar = ((series[0].1[i] / max) * 40.0).round() as usize;
            let _ = write!(out, "  |{}", "#".repeat(bar));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a [`Comparison`] in the style of the paper's Tables 1 and 2:
/// per-operator `µ⁻¹`, predicted `δ⁻¹` and `ρ`, plus the
/// predicted/measured throughput footer.
pub fn comparison_table(title: &str, cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>8} {:>14}",
        "operator", "µ⁻¹ (ms)", "δ⁻¹ (ms)", "ρ", "measured δ⁻¹"
    );
    for (i, op) in cmp.operators.iter().enumerate() {
        let m = cmp.report.metrics[i];
        let mu_inv = if m.utilization > 0.0 && m.arrival > 0.0 {
            1000.0 * m.utilization / m.arrival
        } else {
            f64::NAN
        };
        let dinv = if op.predicted_departure > 0.0 {
            1000.0 / op.predicted_departure
        } else {
            f64::INFINITY
        };
        let measured = op
            .measured_departure
            .map(|d| format!("{:>14.3}", 1000.0 / d))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3} {:>8.3} {measured}",
            op.name, mu_inv, dinv, m.utilization
        );
    }
    let _ = writeln!(
        out,
        "throughput: {:.1} predicted vs {:.1} measured items/s (error {:.2}%)",
        cmp.predicted_throughput,
        cmp.measured_throughput,
        cmp.relative_error() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_series_renders_rows_and_bars() {
        let labels = vec!["t1".to_string(), "t2".to_string()];
        let text = ascii_series(
            "Figure X",
            &labels,
            &[("Predicted", vec![10.0, 20.0]), ("Real", vec![11.0, 19.0])],
        );
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("Predicted"));
        assert!(text.contains("t2"));
        // t2 carries the longest bar (40 hashes).
        assert!(text.contains(&"#".repeat(40)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        ascii_series("x", &["a".to_string()], &[("s", vec![1.0, 2.0])]);
    }

    #[test]
    fn empty_series_is_fine() {
        let text = ascii_series("empty", &[], &[("s", vec![])]);
        assert!(text.contains("== empty =="));
    }
}
