//! Plain-text rendering of experiment results (the bench binaries' output)
//! and of live telemetry snapshots (the `monitor` subcommand's table and
//! the Prometheus text exposition).

use crate::Comparison;
use spinstreams_analysis::{DriftStatus, DriftVerdict};
use spinstreams_runtime::telemetry::ActorSample;
use spinstreams_runtime::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders one or more named series as an aligned text table with a
/// trailing ASCII bar for the first series — the form the figure binaries
/// print (one row per topology/operator).
///
/// `labels` names the rows; each series must have one value per row.
///
/// # Panics
///
/// Panics if series lengths do not match `labels`.
pub fn ascii_series(title: &str, labels: &[String], series: &[(&str, Vec<f64>)]) -> String {
    for (name, values) in series {
        assert_eq!(values.len(), labels.len(), "series {name} length mismatch");
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(5).max(5);
    let _ = write!(out, "{:<label_w$}", "");
    for (name, _) in series {
        let _ = write!(out, " {name:>14}");
    }
    let _ = writeln!(out);
    let max = series
        .first()
        .map(|(_, v)| v.iter().cloned().fold(0.0, f64::max))
        .unwrap_or(0.0);
    for (i, label) in labels.iter().enumerate() {
        let _ = write!(out, "{label:<label_w$}");
        for (_, values) in series {
            let _ = write!(out, " {:>14.3}", values[i]);
        }
        if max > 0.0 {
            let bar = ((series[0].1[i] / max) * 40.0).round() as usize;
            let _ = write!(out, "  |{}", "#".repeat(bar));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a [`Comparison`] in the style of the paper's Tables 1 and 2:
/// per-operator `µ⁻¹`, predicted `δ⁻¹` and `ρ`, plus the
/// predicted/measured throughput footer.
pub fn comparison_table(title: &str, cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>8} {:>14}",
        "operator", "µ⁻¹ (ms)", "δ⁻¹ (ms)", "ρ", "measured δ⁻¹"
    );
    for (i, op) in cmp.operators.iter().enumerate() {
        let m = cmp.report.metrics[i];
        let mu_inv = if m.utilization > 0.0 && m.arrival > 0.0 {
            1000.0 * m.utilization / m.arrival
        } else {
            f64::NAN
        };
        let dinv = if op.predicted_departure > 0.0 {
            1000.0 / op.predicted_departure
        } else {
            f64::INFINITY
        };
        let measured = op
            .measured_departure
            .map(|d| format!("{:>14.3}", 1000.0 / d))
            .unwrap_or_else(|| format!("{:>14}", "-"));
        let _ = writeln!(
            out,
            "{:<24} {:>12.3} {:>12.3} {:>8.3} {measured}",
            op.name, mu_inv, dinv, m.utilization
        );
    }
    let _ = writeln!(
        out,
        "throughput: {:.1} predicted vs {:.1} measured items/s (error {:.2}%)",
        cmp.predicted_throughput,
        cmp.measured_throughput,
        cmp.relative_error() * 100.0
    );
    out
}

fn drift_cell(verdicts: &[DriftVerdict], actor: usize) -> String {
    match verdicts.iter().find(|v| v.index == actor) {
        Some(v) => match (v.status, v.rel_error) {
            (DriftStatus::Drifting, Some(e)) => format!("DRIFT {:.0}%", e * 100.0),
            (DriftStatus::Ok, Some(e)) => format!("ok {:.0}%", e * 100.0),
            (s, _) => s.to_string(),
        },
        None => "-".into(),
    }
}

/// Renders one telemetry snapshot as the live table the `monitor`
/// subcommand prints: per-actor queue occupancy, rolling rates,
/// utilization and drift verdict, followed by per-sink latency quantiles.
pub fn monitor_table(snap: &TelemetrySnapshot, verdicts: &[DriftVerdict]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "t=+{:.3}s  tick {}  window {:.0}ms  trace events {}",
        snap.t_ns as f64 / 1e9,
        snap.tick,
        snap.interval_ns as f64 / 1e6,
        snap.trace_total
    );
    let _ = writeln!(
        s,
        "{:<18} {:>9} {:>10} {:>10} {:>9} {:>9} {:>6} {:>10}",
        "actor", "queue", "in", "out", "arr/s", "dep/s", "util", "drift"
    );
    for a in &snap.actors {
        let queue = match (a.queue_depth, a.queue_capacity) {
            (Some(d), Some(c)) => format!("{d}/{c}"),
            (Some(d), None) => format!("{d}"),
            _ => "-".into(),
        };
        let _ = writeln!(
            s,
            "{:<18} {:>9} {:>10} {:>10} {:>9.1} {:>9.1} {:>6.2} {:>10}",
            a.name,
            queue,
            a.items_in,
            a.items_out,
            a.arrival_rate,
            a.departure_rate,
            a.utilization,
            drift_cell(verdicts, a.id.0)
        );
    }
    for l in &snap.latencies {
        let _ = writeln!(
            s,
            "latency[{}]: n={} mean={:.1}µs p50={:.1}µs p95={:.1}µs p99={:.1}µs max={:.1}µs",
            l.name,
            l.latency.count,
            l.latency.mean_ns as f64 / 1e3,
            l.latency.p50_ns as f64 / 1e3,
            l.latency.p95_ns as f64 / 1e3,
            l.latency.p99_ns as f64 / 1e3,
            l.latency.max_ns as f64 / 1e3
        );
    }
    s
}

fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Appends one `# HELP` + `# TYPE` header pair (Prometheus text
/// exposition format 0.0.4 requires both per metric family).
fn prom_header(s: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(s, "# HELP {name} {help}");
    let _ = writeln!(s, "# TYPE {name} {kind}");
}

/// Renders one telemetry snapshot in the Prometheus text exposition
/// format (version 0.0.4): counters for item/busy/blocked/stall and
/// checkpoint-recovery totals, gauges for queue depths, rolling rates,
/// utilization, latency quantiles, the checkpoint epoch, and drift
/// relative error. Every family carries `# HELP` and `# TYPE` lines.
pub fn prometheus_text(snap: &TelemetrySnapshot, verdicts: &[DriftVerdict]) -> String {
    let mut s = String::new();
    // Multi-tenant runs stamp every per-actor series with the tenant it
    // belongs to; single-tenant snapshots are unchanged.
    let tenant = snap
        .tenant
        .as_deref()
        .map(|t| format!(",tenant=\"{}\"", prom_label(t)))
        .unwrap_or_default();
    let counter = |s: &mut String, name: &str, help: &str, value: &dyn Fn(&ActorSample) -> u64| {
        prom_header(s, name, "counter", help);
        for a in &snap.actors {
            let _ = writeln!(
                s,
                "{name}{{actor=\"{}\"{tenant}}} {}",
                prom_label(&a.name),
                value(a)
            );
        }
    };
    counter(
        &mut s,
        "spinstreams_actor_items_in_total",
        "Items consumed by the actor since run start.",
        &|a| a.items_in,
    );
    counter(
        &mut s,
        "spinstreams_actor_items_out_total",
        "Items emitted by the actor since run start.",
        &|a| a.items_out,
    );
    counter(
        &mut s,
        "spinstreams_actor_busy_ns_total",
        "Nanoseconds the actor spent servicing items.",
        &|a| a.busy_ns,
    );
    counter(
        &mut s,
        "spinstreams_actor_blocked_ns_total",
        "Nanoseconds the actor spent blocked sending into full downstream mailboxes.",
        &|a| a.blocked_ns,
    );
    counter(
        &mut s,
        "spinstreams_actor_inbox_stall_ns_total",
        "Nanoseconds producers spent stalled on this actor's inbox (receiver-edge backpressure).",
        &|a| a.inbox_stall_ns,
    );
    counter(
        &mut s,
        "spinstreams_actor_snapshots_total",
        "Checkpoint snapshots the actor captured.",
        &|a| a.snapshots,
    );
    counter(
        &mut s,
        "spinstreams_actor_snapshot_bytes_total",
        "Bytes of checkpoint state the actor captured.",
        &|a| a.snapshot_bytes,
    );
    counter(
        &mut s,
        "spinstreams_actor_align_stall_ns_total",
        "Nanoseconds spent waiting on checkpoint barrier alignment.",
        &|a| a.align_stall_ns,
    );
    counter(
        &mut s,
        "spinstreams_actor_recoveries_total",
        "Checkpoint-restore recoveries the actor performed.",
        &|a| a.recoveries,
    );
    counter(
        &mut s,
        "spinstreams_actor_replayed_total",
        "Items re-processed from the replay log after recoveries.",
        &|a| a.replayed,
    );
    counter(
        &mut s,
        "spinstreams_actor_replay_overflows_total",
        "Recoveries degraded to reset-to-empty by replay-buffer overflow.",
        &|a| a.replay_overflows,
    );
    prom_header(
        &mut s,
        "spinstreams_actor_queue_depth",
        "gauge",
        "Current mailbox occupancy (absent for sources).",
    );
    for a in &snap.actors {
        if let Some(d) = a.queue_depth {
            let _ = writeln!(
                s,
                "spinstreams_actor_queue_depth{{actor=\"{}\"{tenant}}} {d}",
                prom_label(&a.name)
            );
        }
    }
    prom_header(
        &mut s,
        "spinstreams_actor_arrival_rate",
        "gauge",
        "Rolling arrival rate over the last sampling window (items/s).",
    );
    for a in &snap.actors {
        let _ = writeln!(
            s,
            "spinstreams_actor_arrival_rate{{actor=\"{}\"{tenant}}} {:.3}",
            prom_label(&a.name),
            a.arrival_rate
        );
    }
    prom_header(
        &mut s,
        "spinstreams_actor_departure_rate",
        "gauge",
        "Rolling departure rate over the last sampling window (items/s).",
    );
    for a in &snap.actors {
        let _ = writeln!(
            s,
            "spinstreams_actor_departure_rate{{actor=\"{}\"{tenant}}} {:.3}",
            prom_label(&a.name),
            a.departure_rate
        );
    }
    prom_header(
        &mut s,
        "spinstreams_actor_utilization",
        "gauge",
        "Rolling busy fraction over the last sampling window.",
    );
    for a in &snap.actors {
        let _ = writeln!(
            s,
            "spinstreams_actor_utilization{{actor=\"{}\"{tenant}}} {:.4}",
            prom_label(&a.name),
            a.utilization
        );
    }
    if let Some(epoch) = snap.last_complete_epoch {
        prom_header(
            &mut s,
            "spinstreams_last_complete_epoch",
            "gauge",
            "Highest checkpoint epoch acknowledged by every actor.",
        );
        let _ = writeln!(s, "spinstreams_last_complete_epoch {epoch}");
    }
    prom_header(
        &mut s,
        "spinstreams_sink_latency_ns",
        "gauge",
        "Per-sink end-to-end latency quantiles (ns).",
    );
    for l in &snap.latencies {
        for (q, v) in [
            ("0.5", l.latency.p50_ns),
            ("0.95", l.latency.p95_ns),
            ("0.99", l.latency.p99_ns),
            ("1", l.latency.max_ns),
        ] {
            let _ = writeln!(
                s,
                "spinstreams_sink_latency_ns{{sink=\"{}\",quantile=\"{q}\"{tenant}}} {v}",
                prom_label(&l.name)
            );
        }
    }
    let drifting: Vec<&DriftVerdict> = verdicts.iter().filter(|v| v.rel_error.is_some()).collect();
    if !drifting.is_empty() {
        prom_header(
            &mut s,
            "spinstreams_drift_relative_error",
            "gauge",
            "Relative error between predicted and measured departure rate.",
        );
        for v in &drifting {
            let name = snap
                .actors
                .iter()
                .find(|a| a.id.0 == v.index)
                .map(|a| a.name.as_str())
                .unwrap_or("?");
            let _ = writeln!(
                s,
                "spinstreams_drift_relative_error{{actor=\"{}\"{tenant}}} {:.4}",
                prom_label(name),
                v.rel_error.unwrap_or(f64::NAN)
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_runtime::telemetry::{ActorSample, LatencySnapshot, SinkLatency};
    use spinstreams_runtime::ActorId;

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            tick: 3,
            t_ns: 400_000_000,
            interval_ns: 100_000_000,
            actors: vec![
                ActorSample {
                    id: ActorId(0),
                    name: "src".into(),
                    items_in: 0,
                    items_out: 1000,
                    queue_depth: None,
                    queue_capacity: None,
                    arrival_rate: 0.0,
                    departure_rate: 2500.0,
                    utilization: 0.25,
                    panics: 0,
                    restarts: 0,
                    dead_letters: 0,
                    dropped: 0,
                    busy_ns: 100_000_000,
                    blocked_ns: 0,
                    inbox_stall_ns: 0,
                    snapshots: 0,
                    snapshot_bytes: 0,
                    align_stall_ns: 0,
                    recoveries: 0,
                    replayed: 0,
                    replay_overflows: 0,
                },
                ActorSample {
                    id: ActorId(1),
                    name: "slow".into(),
                    items_in: 990,
                    items_out: 980,
                    queue_depth: Some(31),
                    queue_capacity: Some(32),
                    arrival_rate: 2500.0,
                    departure_rate: 2480.0,
                    utilization: 0.99,
                    panics: 0,
                    restarts: 0,
                    dead_letters: 0,
                    dropped: 0,
                    busy_ns: 396_000_000,
                    blocked_ns: 12_000_000,
                    inbox_stall_ns: 7_000_000,
                    snapshots: 3,
                    snapshot_bytes: 96,
                    align_stall_ns: 2_000_000,
                    recoveries: 1,
                    replayed: 40,
                    replay_overflows: 0,
                },
            ],
            latencies: vec![SinkLatency {
                actor: ActorId(1),
                name: "slow".into(),
                latency: LatencySnapshot {
                    count: 980,
                    mean_ns: 420_000,
                    p50_ns: 400_000,
                    p95_ns: 700_000,
                    p99_ns: 900_000,
                    max_ns: 1_200_000,
                },
            }],
            trace_total: 6,
            last_complete_epoch: Some(4),
            tenant: None,
        }
    }

    fn verdicts() -> Vec<DriftVerdict> {
        vec![DriftVerdict {
            index: 1,
            predicted: Some(2500.0),
            measured: Some(1000.0),
            rel_error: Some(0.6),
            status: DriftStatus::Drifting,
        }]
    }

    #[test]
    fn monitor_table_shows_queues_rates_and_drift() {
        let text = monitor_table(&sample_snapshot(), &verdicts());
        assert!(text.contains("tick 3"));
        assert!(text.contains("31/32"), "queue occupancy missing:\n{text}");
        assert!(text.contains("DRIFT 60%"), "drift cell missing:\n{text}");
        assert!(text.contains("latency[slow]"), "latency line missing");
        assert!(text.contains("p99=900.0µs"));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = prometheus_text(&sample_snapshot(), &verdicts());
        assert!(text.contains("# TYPE spinstreams_actor_items_in_total counter"));
        assert!(text.contains("spinstreams_actor_queue_depth{actor=\"slow\"} 31"));
        assert!(text.contains("spinstreams_actor_departure_rate{actor=\"src\"} 2500.000"));
        assert!(
            text.contains("spinstreams_sink_latency_ns{sink=\"slow\",quantile=\"0.99\"} 900000")
        );
        assert!(text.contains("spinstreams_drift_relative_error{actor=\"slow\"} 0.6000"));
        // Sources have no mailbox: no queue_depth series for src.
        assert!(!text.contains("spinstreams_actor_queue_depth{actor=\"src\"}"));
    }

    #[test]
    fn prometheus_text_has_help_for_every_type() {
        let text = prometheus_text(&sample_snapshot(), &verdicts());
        let mut families = 0;
        let mut prev: Option<&str> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                families += 1;
                // The immediately preceding line must be this family's HELP.
                let help = prev.unwrap_or("");
                assert!(
                    help.starts_with(&format!("# HELP {name} ")),
                    "missing/misplaced HELP for {name}: prev line {help:?}"
                );
            }
            prev = Some(line);
        }
        assert!(families >= 17, "expected >= 17 families, got {families}");
    }

    #[test]
    fn prometheus_text_exports_checkpoint_and_blocked_time_counters() {
        let text = prometheus_text(&sample_snapshot(), &verdicts());
        assert!(text.contains("spinstreams_actor_busy_ns_total{actor=\"slow\"} 396000000"));
        assert!(text.contains("spinstreams_actor_blocked_ns_total{actor=\"slow\"} 12000000"));
        assert!(text.contains("spinstreams_actor_inbox_stall_ns_total{actor=\"slow\"} 7000000"));
        assert!(text.contains("spinstreams_actor_snapshots_total{actor=\"slow\"} 3"));
        assert!(text.contains("spinstreams_actor_snapshot_bytes_total{actor=\"slow\"} 96"));
        assert!(text.contains("spinstreams_actor_align_stall_ns_total{actor=\"slow\"} 2000000"));
        assert!(text.contains("spinstreams_actor_recoveries_total{actor=\"slow\"} 1"));
        assert!(text.contains("spinstreams_actor_replayed_total{actor=\"slow\"} 40"));
        assert!(text.contains("spinstreams_actor_replay_overflows_total{actor=\"slow\"} 0"));
        assert!(text.contains("spinstreams_last_complete_epoch 4"));
    }

    #[test]
    fn tenant_label_rides_every_per_actor_family() {
        let mut snap = sample_snapshot();
        snap.tenant = Some("alpha".into());
        let text = prometheus_text(&snap, &verdicts());
        assert!(text.contains("spinstreams_actor_items_in_total{actor=\"src\",tenant=\"alpha\"}"));
        assert!(text.contains("spinstreams_actor_queue_depth{actor=\"slow\",tenant=\"alpha\"} 31"));
        assert!(text.contains("spinstreams_actor_utilization{actor=\"slow\",tenant=\"alpha\"}"));
        assert!(text.contains(
            "spinstreams_sink_latency_ns{sink=\"slow\",quantile=\"0.99\",tenant=\"alpha\"} 900000"
        ));
        assert!(text.contains("spinstreams_drift_relative_error{actor=\"slow\",tenant=\"alpha\"}"));
        // No tenant, no label — the single-tenant exposition is unchanged.
        let plain = prometheus_text(&sample_snapshot(), &verdicts());
        assert!(!plain.contains("tenant="));
    }

    #[test]
    fn epoch_gauge_absent_without_checkpointing() {
        let mut snap = sample_snapshot();
        snap.last_complete_epoch = None;
        let text = prometheus_text(&snap, &[]);
        assert!(!text.contains("spinstreams_last_complete_epoch"));
    }

    #[test]
    fn ascii_series_renders_rows_and_bars() {
        let labels = vec!["t1".to_string(), "t2".to_string()];
        let text = ascii_series(
            "Figure X",
            &labels,
            &[("Predicted", vec![10.0, 20.0]), ("Real", vec![11.0, 19.0])],
        );
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("Predicted"));
        assert!(text.contains("t2"));
        // t2 carries the longest bar (40 hashes).
        assert!(text.contains(&"#".repeat(40)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        ascii_series("x", &["a".to_string()], &[("s", vec![1.0, 2.0])]);
    }

    #[test]
    fn empty_series_is_fine() {
        let text = ascii_series("empty", &[], &[("s", vec![])]);
        assert!(text.contains("== empty =="));
    }
}
