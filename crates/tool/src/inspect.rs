//! `spinstreams inspect`: the live bottleneck-attribution harness.
//!
//! Runs a topology with deep telemetry on (final-sample counters, span
//! flight recorder, stall accounting), re-profiles the §4.1 annotations
//! online from the final cumulative counters, joins Algorithm 1's
//! predicted bottleneck with the measured one through
//! [`spinstreams_analysis::attribute`], and renders the whole join as a
//! human table or a JSON document. This is the "where and why does the
//! live graph diverge from the model" query the adaptive controller will
//! ask programmatically.

use crate::harness::HarnessError;
use spinstreams_analysis::{
    attribute, steady_state, AttributionReport, DriftConfig, DriftStatus, DriftVerdict,
    ObservedOperator, OperatorCounters, Reprofiler, SteadyStateReport,
};
use spinstreams_codegen::{build_actor_graph, CodegenOptions, GeneratedPlan};
use spinstreams_core::Topology;
use spinstreams_runtime::{
    assemble_spans, execute_with_telemetry, Executor, RunReport, SpanPath, TelemetryConfig,
    TelemetrySnapshot,
};
use std::fmt::Write as _;

/// Maps per-actor cumulative counters from a telemetry snapshot back onto
/// topology operators through the codegen plan: `items_in` from the
/// operator's input actor, `items_out` from its departure actor, and
/// `busy_ns` only when the operator is deployed as exactly one actor (the
/// same observability rule as the oracle's offline profiler — replicated
/// operators split busy time across replica actors, and sources pace
/// rather than serve).
pub fn operator_counters(
    topo: &Topology,
    plan: &GeneratedPlan,
    snap: &TelemetrySnapshot,
) -> Vec<OperatorCounters> {
    topo.operator_ids()
        .map(|id| {
            let inp = &snap.actors[plan.input_actor[id.0].0];
            let dep = &snap.actors[plan.departure_actor[id.0].0];
            let single_actor = plan.input_actor[id.0] == plan.departure_actor[id.0];
            OperatorCounters {
                items_in: inp.items_in,
                items_out: dep.items_out,
                busy_ns: (single_actor && id != topo.source()).then_some(inp.busy_ns),
            }
        })
        .collect()
}

/// Joins the measured utilization and blocked/stall decomposition per
/// operator: busy fraction over the snapshot's timebase (observable under
/// the same single-actor rule as [`operator_counters`]), producer-side
/// blocked time from the operator's departure actor (it does the
/// sending), and receiver-edge inbox stall from its input actor.
pub fn observed_operators(
    topo: &Topology,
    plan: &GeneratedPlan,
    snap: &TelemetrySnapshot,
) -> Vec<ObservedOperator> {
    topo.operator_ids()
        .map(|id| {
            let inp = &snap.actors[plan.input_actor[id.0].0];
            let dep = &snap.actors[plan.departure_actor[id.0].0];
            let single_actor = plan.input_actor[id.0] == plan.departure_actor[id.0];
            let utilization = (single_actor && id != topo.source() && snap.t_ns > 0)
                .then(|| (inp.busy_ns as f64 / snap.t_ns as f64).min(1.0));
            ObservedOperator {
                utilization,
                blocked_ns: dep.blocked_ns,
                inbox_stall_ns: inp.inbox_stall_ns,
            }
        })
        .collect()
}

/// Everything one `spinstreams inspect` run produces.
#[derive(Debug)]
pub struct Inspection {
    /// Algorithm 1 on the declared annotations.
    pub steady: SteadyStateReport,
    /// The predicted-vs-observed bottleneck join.
    pub attribution: AttributionReport,
    /// The online re-profiler, post-run (estimates + slot naming).
    pub reprofiler: Reprofiler,
    /// The final annotation estimates, aligned with
    /// `reprofiler.annotations()`.
    pub estimates: Vec<Option<f64>>,
    /// One verdict per annotation slot: declared vs re-profiled value.
    pub annotation_drift: Vec<DriftVerdict>,
    /// Assembled flight-recorder spans (empty unless the telemetry config
    /// enabled span sampling).
    pub spans: Vec<SpanPath>,
    /// The final telemetry snapshot the counters came from.
    pub snapshot: TelemetrySnapshot,
    /// The engine's run report.
    pub run: RunReport,
}

/// Relative-error threshold above which [`inspect`] marks an annotation
/// stale (drift verdicts in [`Inspection::annotation_drift`]).
pub const ANNOTATION_DRIFT_THRESHOLD: f64 = 0.25;

/// Runs `topo` with deep telemetry and attributes its bottleneck.
///
/// `min_samples` is the re-profiler's estimation floor (items an operator
/// must have consumed/emitted before its annotations are judged).
///
/// # Errors
///
/// Propagates codegen/engine failures; fails with
/// [`HarnessError::Measurement`] when the run produced no telemetry
/// snapshot to attribute from.
pub fn inspect(
    topo: &Topology,
    items: u64,
    executor: &Executor,
    telemetry: &TelemetryConfig,
    min_samples: u64,
) -> Result<Inspection, HarnessError> {
    let steady = steady_state(topo);
    let seed = match executor {
        Executor::Threads(c) => c.seed,
        Executor::VirtualTime(c) => c.seed,
    };
    let mut plan = build_actor_graph(
        topo,
        None,
        &[],
        &[],
        &CodegenOptions {
            items,
            seed,
            ..CodegenOptions::default()
        },
    )?;
    let graph = std::mem::take(&mut plan.graph);
    let (run, telemetry_report) = execute_with_telemetry(graph, executor, telemetry)?;
    let snapshot =
        telemetry_report
            .snapshots
            .last()
            .cloned()
            .ok_or_else(|| HarnessError::Measurement {
                reason: "run produced no telemetry snapshot".into(),
            })?;

    let mut reprofiler = Reprofiler::new(topo).with_min_samples(min_samples);
    let estimates = reprofiler.update(&operator_counters(topo, &plan, &snapshot));
    // One-shot judgement of the final estimates against the declared
    // annotations: no warmup or streak — the final counters *are* the
    // whole run.
    let mut monitor = reprofiler.drift_monitor(DriftConfig {
        threshold: ANNOTATION_DRIFT_THRESHOLD,
        warmup_ticks: 0,
        consecutive: 1,
    });
    let annotation_drift = monitor.tick(&estimates);

    let attribution = attribute(topo, &steady, &observed_operators(topo, &plan, &snapshot));
    let spans = assemble_spans(&telemetry_report.trace);

    Ok(Inspection {
        steady,
        attribution,
        reprofiler,
        estimates,
        annotation_drift,
        spans,
        snapshot,
        run,
    })
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

/// Renders an [`Inspection`] as the human-facing `spinstreams inspect`
/// table: per-operator verdicts, the bottleneck naming with its
/// backpressure chain, stale annotations, and the span latency breakdown.
pub fn inspect_table(topo: &Topology, insp: &Inspection) -> String {
    let mut s = String::new();
    let name = |id: spinstreams_core::OperatorId| topo.operator(id).name.clone();
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>8} {:>10} {:>10}  verdict",
        "operator", "pred ρ", "meas ρ", "blocked", "stalled-on"
    );
    for v in &insp.attribution.verdicts {
        let meas = v
            .measured_utilization
            .map(|u| format!("{u:.2}"))
            .unwrap_or_else(|| "-".into());
        let verdict = match (v.predicted_bottleneck, v.observed_bottleneck) {
            (true, true) => "BOTTLENECK (predicted+observed)",
            (true, false) => "predicted bottleneck",
            (false, true) => "OBSERVED bottleneck",
            (false, false) => "",
        };
        let _ = writeln!(
            s,
            "{:<12} {:>8.2} {:>8} {:>10} {:>10}  {}",
            name(v.operator),
            v.predicted_rho,
            meas,
            fmt_ms(v.blocked_ns),
            fmt_ms(v.inbox_stall_ns),
            verdict
        );
    }
    match (insp.attribution.predicted, insp.attribution.observed) {
        (Some(p), Some(o)) if insp.attribution.agreement => {
            let _ = writeln!(s, "\nbottleneck: {} (model and measurement agree)", name(p));
            let _ = o;
        }
        (p, o) => {
            let _ = writeln!(
                s,
                "\nbottleneck: predicted {} / observed {} (DISAGREE)",
                p.map(&name).unwrap_or_else(|| "-".into()),
                o.map(&name).unwrap_or_else(|| "-".into()),
            );
        }
    }
    if insp.attribution.chain.len() > 1 {
        let chain: Vec<String> = insp.attribution.chain.iter().map(|&id| name(id)).collect();
        let _ = writeln!(s, "backpressure chain: {}", chain.join(" -> "));
    }

    let stale: Vec<&DriftVerdict> = insp
        .annotation_drift
        .iter()
        .filter(|v| v.status == DriftStatus::Drifting)
        .collect();
    if stale.is_empty() {
        let _ = writeln!(
            s,
            "annotations: all within the {:.0}% band",
            ANNOTATION_DRIFT_THRESHOLD * 100.0
        );
    } else {
        let _ = writeln!(s, "stale annotations:");
        for v in stale {
            let _ = writeln!(
                s,
                "  {:<28} declared {:.6} -> measured {:.6} ({:+.0}%)",
                insp.reprofiler.describe(v.index),
                v.predicted.unwrap_or(f64::NAN),
                v.measured.unwrap_or(f64::NAN),
                v.rel_error.unwrap_or(f64::NAN) * 100.0
            );
        }
    }

    if !insp.spans.is_empty() {
        let total: u64 = insp
            .spans
            .iter()
            .filter_map(SpanPath::total_ns)
            .sum::<u64>();
        let mean = total / insp.spans.len() as u64;
        let _ = writeln!(
            s,
            "spans: {} sampled, mean end-to-end {}",
            insp.spans.len(),
            fmt_ms(mean)
        );
        // Mean sojourn per hop actor across all sampled spans.
        let mut hop_sum: Vec<(u64, u64)> = vec![(0, 0); insp.snapshot.actors.len()];
        for p in &insp.spans {
            for h in &p.hops {
                if let Some(slot) = hop_sum.get_mut(h.actor.0) {
                    slot.0 += h.hop_ns;
                    slot.1 += 1;
                }
            }
        }
        for (i, (sum, count)) in hop_sum.iter().enumerate() {
            if *count > 0 {
                let _ = writeln!(
                    s,
                    "  hop {:<12} mean {}",
                    insp.snapshot.actors[i].name,
                    fmt_ms(sum / count)
                );
            }
        }
    }
    s
}

/// Renders an [`Inspection`] as one JSON document (machine-facing output
/// of `spinstreams inspect --json`).
pub fn inspect_json(topo: &Topology, insp: &Inspection) -> String {
    let mut s = String::from("{\"type\":\"inspection\",\"operators\":[");
    for (i, v) in insp.attribution.verdicts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"operator\":{},\"name\":\"{}\",\"predicted_rho\":{:.4}",
            v.operator.0,
            topo.operator(v.operator).name,
            v.predicted_rho
        );
        match v.measured_utilization {
            Some(u) => {
                let _ = write!(s, ",\"measured_utilization\":{u:.4}");
            }
            None => s.push_str(",\"measured_utilization\":null"),
        }
        let _ = write!(
            s,
            ",\"blocked_ns\":{},\"inbox_stall_ns\":{},\"predicted_bottleneck\":{},\"observed_bottleneck\":{}}}",
            v.blocked_ns, v.inbox_stall_ns, v.predicted_bottleneck, v.observed_bottleneck
        );
    }
    s.push_str("],\"bottleneck\":{");
    match insp.attribution.predicted {
        Some(p) => {
            let _ = write!(s, "\"predicted\":\"{}\"", topo.operator(p).name);
        }
        None => s.push_str("\"predicted\":null"),
    }
    match insp.attribution.observed {
        Some(o) => {
            let _ = write!(s, ",\"observed\":\"{}\"", topo.operator(o).name);
        }
        None => s.push_str(",\"observed\":null"),
    }
    let _ = write!(s, ",\"agreement\":{}", insp.attribution.agreement);
    let chain: Vec<String> = insp
        .attribution
        .chain
        .iter()
        .map(|&id| format!("\"{}\"", topo.operator(id).name))
        .collect();
    let _ = write!(s, ",\"chain\":[{}]}}", chain.join(","));

    s.push_str(",\"annotations\":[");
    for (i, v) in insp.annotation_drift.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"status\":\"{}\"",
            insp.reprofiler.describe(v.index),
            v.status
        );
        match v.predicted {
            Some(p) => {
                let _ = write!(s, ",\"declared\":{p:.9}");
            }
            None => s.push_str(",\"declared\":null"),
        }
        match v.measured {
            Some(m) => {
                let _ = write!(s, ",\"measured\":{m:.9}");
            }
            None => s.push_str(",\"measured\":null"),
        }
        s.push('}');
    }
    s.push_str("],\"spans\":{");
    let _ = write!(s, "\"count\":{}", insp.spans.len());
    if !insp.spans.is_empty() {
        let total: u64 = insp
            .spans
            .iter()
            .filter_map(SpanPath::total_ns)
            .sum::<u64>();
        let _ = write!(s, ",\"mean_total_ns\":{}", total / insp.spans.len() as u64);
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{OperatorSpec, ServiceTime};
    use spinstreams_runtime::SimConfig;
    use std::time::Duration;

    /// src -> fast -> slow -> sink with real virtual work: `slow` is both
    /// the modeled and the measured bottleneck.
    fn pipeline() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
        );
        let f = b.add_operator(
            OperatorSpec::stateless("fast", ServiceTime::from_micros(50.0))
                .with_kind("identity-map")
                .with_param("work_ns", 50_000.0),
        );
        let m = b.add_operator(
            OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
                .with_kind("identity-map")
                .with_param("work_ns", 400_000.0),
        );
        let k = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
                .with_kind("identity-map")
                .with_param("work_ns", 10_000.0),
        );
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        b.build().unwrap()
    }

    fn sim() -> Executor {
        Executor::VirtualTime(SimConfig {
            mailbox_capacity: 32,
            seed: 0x1195EC7,
            intrinsic_time: false,
            ..SimConfig::default()
        })
    }

    fn run_inspection() -> Inspection {
        let tcfg = TelemetryConfig::default()
            .with_interval(Duration::from_millis(50))
            .with_span_sample(64);
        inspect(&pipeline(), 4_000, &sim(), &tcfg, 200).unwrap()
    }

    #[test]
    fn inspect_names_the_slow_operator() {
        let topo = pipeline();
        let insp = run_inspection();
        let slow = topo.operator_by_name("slow").unwrap();
        assert_eq!(insp.attribution.predicted, Some(slow));
        assert_eq!(insp.attribution.observed, Some(slow));
        assert!(insp.attribution.agreement);
        // The re-profiled service time matches the injected 400 µs work.
        let slot = insp
            .reprofiler
            .annotations()
            .iter()
            .position(|a| {
                a.operator == slow
                    && matches!(a.kind, spinstreams_analysis::AnnotationKind::ServiceTime)
            })
            .unwrap();
        let est = insp.estimates[slot].unwrap();
        assert!(
            (est - 400e-6).abs() / 400e-6 < 0.05,
            "re-profiled µ {est} vs injected 400µs"
        );
        // Span sampling produced assembled paths ending at the sink.
        assert!(!insp.spans.is_empty());
    }

    #[test]
    fn renders_table_and_json() {
        let topo = pipeline();
        let insp = run_inspection();
        let table = inspect_table(&topo, &insp);
        assert!(table.contains("BOTTLENECK"), "{table}");
        assert!(table.contains("slow"));
        assert!(table.contains("spans:"));
        let json = inspect_json(&topo, &insp);
        assert!(json.starts_with("{\"type\":\"inspection\""));
        assert!(json.contains("\"predicted\":\"slow\""));
        assert!(json.contains("\"observed\":\"slow\""));
        assert!(json.contains("\"agreement\":true"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn annotation_drift_flags_a_lying_declaration() {
        // Declare `slow` at 100 µs but inject 400 µs of work: the
        // re-profiler must flag service_time(slow) stale.
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
        );
        let m = b.add_operator(
            OperatorSpec::stateless("slow", ServiceTime::from_micros(100.0))
                .with_kind("identity-map")
                .with_param("work_ns", 400_000.0),
        );
        let k = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
                .with_kind("identity-map")
                .with_param("work_ns", 10_000.0),
        );
        b.add_edge(s, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        let topo = b.build().unwrap();
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(50));
        let insp = inspect(&topo, 4_000, &sim(), &tcfg, 200).unwrap();
        let stale: Vec<String> = insp
            .annotation_drift
            .iter()
            .filter(|v| v.status == DriftStatus::Drifting)
            .map(|v| insp.reprofiler.describe(v.index))
            .collect();
        assert!(
            stale.contains(&"service_time(slow)".to_string()),
            "stale: {stale:?}"
        );
    }
}
