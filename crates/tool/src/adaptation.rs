//! The differential oracle's **adaptation layer**: does the closed control
//! loop preserve stream semantics while it migrates?
//!
//! (The layer lives in the tool crate — not `spinstreams-oracle` — because
//! it drives [`run_adaptive`], and the oracle crate is a dependency of this
//! one; it is surfaced next to the other oracle layers through
//! `spinstreams oracle --adaptation-seeds`.)
//!
//! One scenario, two runs:
//!
//! 1. **Golden** — the seeded keyed pipeline (source → partitioned
//!    `keyed-sum` → sink) executed with the controller armed but *no*
//!    faults. The controller must make zero plan changes, and the sink's
//!    captured tuple stream is the reference output.
//! 2. **Adaptive** — the same pipeline with a chaos-harness service-time
//!    shift injected mid-run (the fault injector makes the aggregate ~6x
//!    slower after a fixed tuple count). The controller must detect the
//!    drift and migrate the live graph — a scale-out of the partitioned
//!    operator, which exercises the route swap *and* the pause–drain–resume
//!    key handoff.
//!
//! The verdict requires (§5.2 acceptance):
//!
//! * **(a) exactly-once across the migration** — total sink counts and the
//!   per-key aggregate sequences (key, seq, value bits) are identical to
//!   the golden run: nothing lost, duplicated, or reordered within a key;
//! * **(b) model-faithful recovery** — post-migration measured throughput
//!   is within the drift threshold of the *new* plan's Algorithm 1
//!   prediction (symmetric relative error, matching `DriftVerdict`).

use crate::adaptive::{run_adaptive, AdaptiveRunConfig, OperatorFault};
use crate::harness::HarnessError;
use spinstreams_analysis::{AdaptiveConfig, DriftConfig};
use spinstreams_core::{KeyDistribution, OperatorSpec, ServiceTime, Topology, TUPLE_ARITY};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Per-key sink output in arrival order, projected to raw bits so the
/// comparison is byte-exact: `key -> [(seq, value bits per lane)]`.
type PerKey = BTreeMap<u64, Vec<(u64, [u64; TUPLE_ARITY])>>;

/// The adaptation layer's verdict for one seed.
#[derive(Debug)]
pub struct AdaptationReport {
    /// The scenario seed.
    pub seed: u64,
    /// Plan changes the faulted run's controller emitted.
    pub changes: usize,
    /// Route swaps applied live in the faulted run.
    pub swaps_applied: u64,
    /// Key-state handoffs merged in the faulted run.
    pub handoffs_migrated: u64,
    /// Operator degrees before / after the migration.
    pub initial_replicas: Vec<usize>,
    /// Degrees after the last migration.
    pub final_replicas: Vec<usize>,
    /// Sink tuples captured by the golden (unfaulted) run.
    pub golden_sink: usize,
    /// Sink tuples captured by the faulted adaptive run.
    pub adaptive_sink: usize,
    /// Measured post-migration throughput (items/s), when measurable.
    pub measured_throughput: Option<f64>,
    /// The new plan's Algorithm 1 prediction (items/s), when a change fired.
    pub predicted_throughput: Option<f64>,
    /// Every violated invariant, human-readable. Empty = clean.
    pub divergences: Vec<String>,
}

impl AdaptationReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The fixed keyed scenario: a paced source feeding a partitioned-stateful
/// windowed sum and a cheap sink. Calibrated to fit comfortably inside a
/// single CPU before the shift (so the clean run never drifts on scheduler
/// noise) and to push the aggregate's utilization just past 1 after it
/// (so Algorithm 2 must scale it out, forcing a key repartitioning).
fn scenario_topology() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(500.0)).with_kind("source"),
    );
    let a = b.add_operator(
        OperatorSpec::partitioned(
            "agg",
            ServiceTime::from_micros(100.0),
            KeyDistribution::uniform(8),
        )
        .with_kind("keyed-sum")
        .with_param("window", 6.0)
        .with_param("slide", 1.0)
        .with_param("work_ns", 100_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(20.0))
            .with_kind("identity-map")
            .with_param("work_ns", 20_000.0),
    );
    b.add_edge(s, a, 1.0).expect("edge");
    b.add_edge(a, k, 1.0).expect("edge");
    b.build().expect("scenario topology")
}

fn scenario_config(seed: u64) -> AdaptiveRunConfig {
    AdaptiveRunConfig {
        items: 6_000,
        seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xADA),
        controller: AdaptiveConfig {
            drift: DriftConfig {
                threshold: 0.5,
                warmup_ticks: 2,
                // Strictly more consecutive drifting ticks than the
                // profiling window is long, so the verdict's measurement
                // window is fully post-shift. Windows taken while the
                // backlog is still building remain diluted even then — the
                // controller's saturation guard covers that case by
                // refusing to act on a drifting operator read at ρ ≈ 1.
                consecutive: 5,
            },
            cooldown_ticks: 4,
            hysteresis: 0.05,
            max_replicas: 4,
            min_samples: 100,
        },
        batch_size: 8,
        workers: None,
        checkpoint_interval: 500,
        telemetry_interval: Duration::from_millis(50),
        window_ticks: 4,
        faults: Vec::new(),
        capture_sink: true,
    }
}

/// `(tuples, extra_ns)` of the injected mid-run service-time shift:
/// 100 µs declared + 500 µs injected ≈ 600 µs measured, which at the
/// source's 2 k/s both trips the 0.5 drift threshold (symmetric relative
/// error ≈ 0.83) and pushes utilization past 1 (ρ ≈ 1.2), forcing a
/// scale-out.
const SHIFT: (u64, u64) = (1_000, 500_000);

fn per_key(tuples: &[(u64, u64, [f64; TUPLE_ARITY])]) -> PerKey {
    let mut m = PerKey::new();
    for (key, seq, values) in tuples {
        m.entry(*key)
            .or_default()
            .push((*seq, values.map(f64::to_bits)));
    }
    m
}

fn symmetric_rel_error(predicted: f64, measured: f64) -> f64 {
    let denom = predicted.abs().max(measured.abs());
    if denom <= f64::MIN_POSITIVE {
        0.0
    } else {
        (predicted - measured).abs() / denom
    }
}

/// Runs the adaptation layer for one seed: golden run, shifted run, and
/// the (a)/(b) comparisons. See the module docs for the invariants.
///
/// # Errors
///
/// Propagates codegen/engine failures from either run; the semantic
/// checks themselves are reported as divergences, not errors.
pub fn run_adaptation_layer(seed: u64) -> Result<AdaptationReport, HarnessError> {
    let topo = scenario_topology();
    let keys = KeyDistribution::uniform(8);

    let golden_cfg = scenario_config(seed);
    let golden = run_adaptive(&topo, Some(keys.clone()), &golden_cfg)?;

    let shifted_cfg = AdaptiveRunConfig {
        faults: vec![OperatorFault {
            operator: "agg".into(),
            slow_after: Some(SHIFT),
            ..OperatorFault::default()
        }],
        ..scenario_config(seed)
    };
    let shifted = run_adaptive(&topo, Some(keys), &shifted_cfg)?;

    let mut divergences = Vec::new();

    // The golden run is the baseline *and* a null check on the controller.
    if !golden.changes.is_empty() {
        divergences.push(format!(
            "golden run migrated without drift: {} plan change(s), {:?} -> {:?}",
            golden.changes.len(),
            golden.initial_replicas,
            golden.final_replicas,
        ));
    }
    if golden.run.total_dead_letters() != 0 {
        divergences.push(format!(
            "golden run dropped {} tuple(s)",
            golden.run.total_dead_letters()
        ));
    }

    // The shift must actually drive a live migration, and a scale-out of
    // the partitioned aggregate must move key state.
    if shifted.changes.is_empty() {
        divergences.push(format!(
            "controller never reacted to the service-time shift \
             ({} tick(s), {} rebase(s))",
            shifted.ticks, shifted.rebases,
        ));
    } else {
        if shifted.swaps_applied == 0 {
            divergences.push("migration was planned but no route swap applied".into());
        }
        if shifted.final_replicas[1] > 1 && shifted.handoffs_migrated == 0 {
            divergences.push("aggregate scaled out but no key-state handoff was merged".into());
        }
    }

    // (a) exactly-once: identical sink counts and per-key sequences.
    if shifted.run.total_dead_letters() != 0 {
        divergences.push(format!(
            "adaptive run dropped {} tuple(s)",
            shifted.run.total_dead_letters()
        ));
    }
    if golden.sink_tuples.len() != shifted.sink_tuples.len() {
        divergences.push(format!(
            "sink counts diverge: golden {} vs adaptive {}",
            golden.sink_tuples.len(),
            shifted.sink_tuples.len(),
        ));
    }
    let golden_keys = per_key(&golden.sink_tuples);
    let shifted_keys = per_key(&shifted.sink_tuples);
    if golden_keys != shifted_keys {
        let mut bad: Vec<u64> = golden_keys
            .keys()
            .chain(shifted_keys.keys())
            .copied()
            .filter(|k| golden_keys.get(k) != shifted_keys.get(k))
            .collect();
        bad.dedup();
        divergences.push(format!(
            "per-key aggregate sequences diverge at key(s) {bad:?}",
        ));
    }

    // (b) post-migration throughput within the drift threshold of the new
    // plan's Algorithm 1 prediction.
    let predicted = shifted.changes.last().map(|c| c.predicted_throughput);
    if let Some(predicted) = predicted {
        match shifted.post_change_throughput {
            Some(measured) => {
                let err = symmetric_rel_error(predicted, measured);
                if err > golden_cfg.controller.drift.threshold {
                    divergences.push(format!(
                        "post-migration throughput off-model: measured {measured:.0} vs \
                         predicted {predicted:.0} items/s (symmetric error {err:.2} > \
                         threshold {:.2})",
                        golden_cfg.controller.drift.threshold,
                    ));
                }
            }
            None => divergences
                .push("migration fired but the post-change tail was too short to measure".into()),
        }
    }

    Ok(AdaptationReport {
        seed,
        changes: shifted.changes.len(),
        swaps_applied: shifted.swaps_applied,
        handoffs_migrated: shifted.handoffs_migrated,
        initial_replicas: shifted.initial_replicas.clone(),
        final_replicas: shifted.final_replicas.clone(),
        golden_sink: golden.sink_tuples.len(),
        adaptive_sink: shifted.sink_tuples.len(),
        measured_throughput: shifted.post_change_throughput,
        predicted_throughput: predicted,
        divergences,
    })
}

/// Renders one adaptation report as the oracle's plain-text verdict block.
pub fn adaptation_table(report: &AdaptationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "adaptation seed {}: {} change(s), {} swap(s) applied, {} handoff(s), \
         plan {:?} -> {:?}",
        report.seed,
        report.changes,
        report.swaps_applied,
        report.handoffs_migrated,
        report.initial_replicas,
        report.final_replicas,
    );
    let _ = writeln!(
        s,
        "  sink: golden {} vs adaptive {} tuple(s)",
        report.golden_sink, report.adaptive_sink
    );
    match (report.measured_throughput, report.predicted_throughput) {
        (Some(m), Some(p)) => {
            let _ = writeln!(
                s,
                "  post-migration: measured {m:.0} vs predicted {p:.0} items/s \
                 (symmetric error {:.2})",
                symmetric_rel_error(p, m)
            );
        }
        _ => {
            let _ = writeln!(s, "  post-migration: n/a");
        }
    }
    if report.is_clean() {
        let _ = writeln!(s, "  verdict: clean");
    } else {
        for d in &report.divergences {
            let _ = writeln!(s, "  DIVERGENT: {d}");
        }
    }
    s
}

// The layer's own coverage lives in `tests/adaptive.rs` (repo tier-1),
// which runs `run_adaptation_layer` on the CI seed; unit tests here stay
// cheap and structural.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_well_formed() {
        let topo = scenario_topology();
        assert_eq!(topo.num_operators(), 3);
        assert!(topo
            .operator(spinstreams_core::OperatorId(1))
            .state
            .is_partitioned());
        let cfg = scenario_config(7);
        assert!(cfg.capture_sink);
        assert!(cfg.checkpoint_interval > 0);
    }

    #[test]
    fn symmetric_error_is_symmetric() {
        assert!((symmetric_rel_error(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert!((symmetric_rel_error(50.0, 100.0) - 0.5).abs() < 1e-12);
        assert_eq!(symmetric_rel_error(0.0, 0.0), 0.0);
    }
}
