//! The SpinStreams command-line tool — the §4 workflow without the GUI.
//!
//! ```text
//! spinstreams analyze  <topology.xml>                 steady-state analysis (Algorithm 1)
//! spinstreams optimize <topology.xml> [--max-replicas N]
//!                                                     bottleneck elimination (Algorithm 2)
//! spinstreams fuse     <topology.xml> --members 2,3,4 operator fusion (Algorithm 3)
//! spinstreams autofuse <topology.xml> [--threshold T] automated greedy fusion (§7)
//! spinstreams codegen  <topology.xml> [--out main.rs] generate the optimized application
//! spinstreams run      <topology.xml> [--items N] [--batch N] [--checkpoint N]
//!                                     [--telemetry FILE] [--interval-ms M]
//!                                     [--adaptive] [--drift-threshold T] [--cooldown N]
//!                                     [--hysteresis H] [--max-replicas N] [--min-samples N]
//!                                                     execute and compare vs the model;
//!                                                     --adaptive closes the control loop
//!                                                     (live re-optimization + migration)
//! spinstreams chaos    <topology.xml> [--items N] [--panic-prob P] [--seed S] [--batch N]
//!                                     [--workers N] [--checkpoint N] [--crash-at-epoch N]
//!                                     [--crash-after-tuples N] [--telemetry FILE] [--interval-ms M]
//!                                                     fault-injected run: supervision + dead letters
//! spinstreams monitor  <topology.xml> [--items N] [--batch N] [--workers N] [--interval-ms M]
//!                                     [--format table|jsonl|prom]
//!                                                     live telemetry of a threaded run
//! spinstreams inspect  <topology.xml> [--items N] [--batch N] [--workers N] [--threaded]
//!                                     [--span-sample N] [--min-samples N] [--json]
//!                                                     bottleneck attribution: re-profile the
//!                                                     annotations online, join predicted vs
//!                                                     measured bottleneck, trace backpressure
//! spinstreams dot      <topology.xml> [--optimized]   Graphviz rendering of the (optimized) topology
//! spinstreams serve    [--workers N] [--batch N] [--script FILE]
//!                                                     long-lived multi-tenant serving shell:
//!                                                     submit / status / launch many topologies
//!                                                     on one shared pool, with a checksum-keyed
//!                                                     plan cache and model-driven admission
//! spinstreams oracle   [--seeds N] [--seed-start S] [--no-threaded] [--no-fission]
//!                      [--no-fusion] [--no-minimize] [--workers N] [--pin-cores L]
//!                      [--artifacts DIR] [--adaptation-seeds A,B,C]
//!                      [--multitenant-seeds A,B,C]
//!                                                     differential oracle sweep: prediction vs
//!                                                     simulator vs threaded runtime; the
//!                                                     adaptation layer replays a mid-run
//!                                                     service-time shift and checks the live
//!                                                     migration preserved exactly-once output;
//!                                                     the multitenant layer co-schedules seeded
//!                                                     pipelines on one shared pool and checks
//!                                                     per-tenant isolation and the aggregate
//! ```
//!
//! `run`, `chaos`, `monitor`, `inspect` and `oracle` also accept
//! `--pin-cores 0,1,2` to pin the threaded engine's threads (stage-sharded;
//! best-effort, no-op on platforms without affinity support).
//!
//! Topology files follow the §4.1 XML formalism (see `spinstreams-xml`);
//! operators whose specs carry registry `kind` tags are runnable.

use spinstreams_analysis::{
    apply_replica_bound, auto_fuse, eliminate_bottlenecks, evaluate_with_replicas,
    format_fission_plan, format_steady_state, fuse, fusion_candidates, steady_state,
};
use spinstreams_analysis::{AdaptiveConfig, AdmissionVerdict, DriftConfig};
use spinstreams_codegen::{build_actor_graph, emit_rust_source, CodegenOptions};
use spinstreams_core::{OperatorId, StateClass, Topology};
use spinstreams_oracle::{format_report, run_sweep, write_artifacts, OracleConfig};
use spinstreams_runtime::Executor;
use spinstreams_runtime::{
    run_with_telemetry, EngineConfig, ExecutorKind, PinningConfig, TelemetryConfig,
};
use spinstreams_serve::{ServeConfig, StreamService, SubmitRequest};
use spinstreams_tool::{
    adaptation_table, adaptive_table, chaos_table, comparison_table, drift_json,
    experiment_executor, inspect, inspect_json, inspect_table, monitor_table, multitenant_table,
    predict_vs_measure, predict_vs_measure_telemetry, predicted_actor_rates, prometheus_text,
    run_adaptation_layer, run_adaptive, run_chaos, run_chaos_with_telemetry, run_multitenant_layer,
    tenant_topology, topology_dot, AdaptiveRunConfig, ChaosConfig, DriftExporter,
};
use spinstreams_xml::{runtime_settings_from_xml, topology_from_xml};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: spinstreams <analyze|optimize|fuse|autofuse|codegen|run|chaos|monitor|inspect|dot> <topology.xml> [options]\n\
         \x20      spinstreams serve  [--workers N] [--batch N] [--script FILE]\n\
         \x20      spinstreams oracle [--seeds N] [--seed-start S] [--no-threaded] [--no-fission]\n\
         \x20                         [--no-fusion] [--no-minimize] [--workers N] [--pin-cores L]\n\
         \x20                         [--artifacts DIR] [--adaptation-seeds A,B,C]\n\
         \x20                         [--multitenant-seeds A,B,C]\n\
         \n\
         analyze   — steady-state throughput analysis (Algorithm 1)\n\
         optimize  — bottleneck elimination via fission (Algorithm 2); --max-replicas N\n\
         fuse      — fuse a sub-graph (Algorithm 3); --members i,j,k (0-based operator ids)\n\
         autofuse  — automated greedy fusion; --threshold T (default 0.9)\n\
         codegen   — emit the optimized application's Rust source; --out FILE\n\
         run       — execute on the virtual-time runtime and compare vs the model; --items N,\n\
                     --batch N (envelope batch size; accepted for parity, virtual time ignores it),\n\
                     --telemetry FILE (JSON-lines export with drift verdicts), --interval-ms M;\n\
                     --adaptive runs the *threaded* engine with the control loop closed —\n\
                     live re-profiling, re-optimization, and in-flight migration (needs\n\
                     --checkpoint N or <settings checkpoint-interval=\"N\"/>); knobs\n\
                     --drift-threshold T, --cooldown N, --hysteresis H, --max-replicas N,\n\
                     --min-samples N (defaults from <settings adaptive=\"true\" ...attrs/>)\n\
         chaos     — fault-injected threaded run exercising supervision;\n\
                     --items N, --panic-prob P (default 0.05), --seed S, --batch N,\n\
                     --workers N, --checkpoint N, --crash-at-epoch N (every worker panics\n\
                     once while snapshotting epoch N), --crash-after-tuples N (every worker\n\
                     panics once on its N-th tuple), --telemetry FILE, --interval-ms M\n\
         monitor   — live telemetry of a threaded run; --items N, --batch N, --workers N,\n\
                     --interval-ms M, --format table|jsonl|prom (default table)\n\
         inspect   — bottleneck attribution: run with deep telemetry, re-profile the §4.1\n\
                     annotations online and join the predicted vs measured bottleneck;\n\
                     --items N, --batch N, --threaded (real threads instead of the\n\
                     virtual-time simulator), --workers N (implies --threaded),\n\
                     --span-sample N (trace every Nth tuple; default 64, 0 = off),\n\
                     --min-samples N (re-profiler floor, default 200), --json\n\
         \n\
         --batch N defaults to the topology file's <settings batch-size=\"N\"/> (or 1);\n\
         --workers N selects the worker-pool executor with N threads (0 = one per core;\n\
         default: the file's <settings workers=\"N\"/>, else one dedicated thread per actor);\n\
         --checkpoint N enables epoch-aligned checkpointing every N source items (0 = off;\n\
         default: the file's <settings checkpoint-interval=\"N\"/>, else off);\n\
         --pin-cores 0,1,2 pins engine threads to the listed cores, sharding actors by\n\
         topological stage (default: the file's <settings pin-cores=\"...\"/>, else unpinned;\n\
         best-effort — warns and runs unpinned where affinity is unsupported)\n\
         dot       — Graphviz rendering annotated with the analysis; --optimized adds the fission plan\n\
         serve     — long-lived multi-tenant serving shell on one shared engine; reads commands\n\
                     from --script FILE (default stdin): submit NAME FILE.xml [WEIGHT],\n\
                     submit-seed NAME SEED IDX [WEIGHT] (a seeded paced pipeline),\n\
                     status, cache, plan NAME, launch, stop NAME, quit; --workers N sizes the\n\
                     shared pool (0 = one per core; default 1), --batch N the envelope batches,\n\
                     --items N the per-launch source items (default 10000)\n\
         oracle    — cross-validate Algorithm 1/2/3 predictions against the simulator (and a\n\
                     threaded smoke run) over seeded topologies; exits nonzero on divergence.\n\
                     --seeds N (default 20), --seed-start S (default 0), --no-threaded,\n\
                     --no-fission, --no-fusion (skip the monomorphized-vs-interpreted fusion\n\
                     layer), --no-minimize, --workers N (pool executor for the threaded\n\
                     smoke runs), --pin-cores L, --artifacts DIR (write repro artifacts),\n\
                     --adaptation-seeds A,B,C (run the drift → live-migration adaptation\n\
                     layer on the listed seeds instead of the static sweep),\n\
                     --multitenant-seeds A,B,C (run the shared-pool multi-tenant layer on\n\
                     the listed seeds: solo-vs-concurrent sink isolation, admission, and\n\
                     aggregate-vs-model throughput)"
    );
    ExitCode::FAILURE
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn telemetry_config(args: &[String]) -> TelemetryConfig {
    let interval_ms = flag_value(args, "--interval-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    // `--span-sample N` arms the flight recorder: every Nth source tuple
    // is traced hop-by-hop (rounded to a power of two; 0 = off).
    let span_sample = flag_value(args, "--span-sample")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    TelemetryConfig::default()
        .with_interval(Duration::from_millis(interval_ms))
        .with_span_sample(span_sample)
}

fn load(path: &str) -> Result<(Topology, spinstreams_xml::RuntimeSettings), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let topo = topology_from_xml(&text).map_err(|e| format!("{path}: {e}"))?;
    let settings = runtime_settings_from_xml(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((topo, settings))
}

/// `spinstreams oracle` — the differential sweep. Unlike every other
/// subcommand it takes no topology file: scenarios are generated from seeds.
fn oracle_cmd(args: &[String]) -> ExitCode {
    // The adaptation layer: `--adaptation-seeds 1,2,3` runs the drift →
    // live-migration scenario on the listed seeds. It replaces the static
    // sweep unless `--seeds` was also given explicitly.
    if let Some(raw) = flag_value(args, "--adaptation-seeds") {
        let parsed: Result<Vec<u64>, _> = raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::parse)
            .collect();
        let adapt_seeds = match parsed {
            Ok(v) if !v.is_empty() => v,
            _ => {
                eprintln!("--adaptation-seeds must be a comma-separated list of integers");
                return ExitCode::FAILURE;
            }
        };
        let mut dirty = 0usize;
        for &seed in &adapt_seeds {
            match run_adaptation_layer(seed) {
                Ok(report) => {
                    print!("{}", adaptation_table(&report));
                    if !report.is_clean() {
                        dirty += 1;
                    }
                }
                Err(e) => {
                    eprintln!("adaptation seed {seed}: {e}");
                    dirty += 1;
                }
            }
        }
        println!(
            "{}/{} adaptation seed(s) clean",
            adapt_seeds.len() - dirty,
            adapt_seeds.len()
        );
        if dirty > 0 {
            return ExitCode::FAILURE;
        }
        if flag_value(args, "--seeds").is_none()
            && flag_value(args, "--multitenant-seeds").is_none()
        {
            return ExitCode::SUCCESS;
        }
    }
    // The multi-tenant layer: `--multitenant-seeds 1,2,3` co-schedules N
    // seeded paced pipelines on one shared serving pool per seed and
    // checks admission, per-tenant sink isolation, plan-cache coherence
    // and the aggregate against the summed Algorithm 1 predictions.
    if let Some(raw) = flag_value(args, "--multitenant-seeds") {
        let parsed: Result<Vec<u64>, _> = raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::parse)
            .collect();
        let mt_seeds = match parsed {
            Ok(v) if !v.is_empty() => v,
            _ => {
                eprintln!("--multitenant-seeds must be a comma-separated list of integers");
                return ExitCode::FAILURE;
            }
        };
        let mut dirty = 0usize;
        for &seed in &mt_seeds {
            match run_multitenant_layer(seed) {
                Ok(report) => {
                    print!("{}", multitenant_table(&report));
                    if !report.is_clean() {
                        dirty += 1;
                    }
                }
                Err(e) => {
                    eprintln!("multitenant seed {seed}: {e}");
                    dirty += 1;
                }
            }
        }
        println!(
            "{}/{} multitenant seed(s) clean",
            mt_seeds.len() - dirty,
            mt_seeds.len()
        );
        if dirty > 0 {
            return ExitCode::FAILURE;
        }
        if flag_value(args, "--seeds").is_none() {
            return ExitCode::SUCCESS;
        }
    }
    let seeds = match flag_value(args, "--seeds").map(|v| v.parse::<u64>()) {
        None => 20,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--seeds must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let seed_start = match flag_value(args, "--seed-start").map(|v| v.parse::<u64>()) {
        None => 0,
        Some(Ok(s)) => s,
        _ => {
            eprintln!("--seed-start must be a non-negative integer");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = OracleConfig::default();
    if args.iter().any(|a| a == "--no-threaded") {
        cfg.threaded_runs = 0;
    }
    if args.iter().any(|a| a == "--no-fission") {
        cfg.check_fission = false;
    }
    if args.iter().any(|a| a == "--no-fusion") {
        cfg.check_fusion = false;
    }
    if args.iter().any(|a| a == "--no-minimize") {
        cfg.minimize = false;
    }
    if let Some(raw) = flag_value(args, "--workers") {
        match raw.parse::<usize>() {
            Ok(n) => cfg.workers = Some(n),
            Err(_) => {
                eprintln!("--workers must be a non-negative integer (0 = one per core)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--pin-cores") {
        match PinningConfig::parse(&raw) {
            Ok(p) => cfg.pinning = p,
            Err(e) => {
                eprintln!("--pin-cores: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let artifacts = flag_value(args, "--artifacts");

    println!(
        "oracle sweep: seeds {seed_start}..{} ({} threaded on {}, fission {}, fusion {}, minimize {})",
        seed_start + seeds - 1,
        cfg.threaded_runs.min(seeds as usize),
        match cfg.workers {
            Some(0) => "pool (auto workers)".to_string(),
            Some(n) => format!("pool ({n} workers)"),
            None => "thread-per-actor".to_string(),
        },
        if cfg.check_fission { "on" } else { "off" },
        if cfg.check_fusion { "on" } else { "off" },
        if cfg.minimize { "on" } else { "off" },
    );
    let sweep = run_sweep(&cfg, seed_start, seeds, &mut |report| {
        if report.is_clean() {
            println!(
                "seed {:>4}: ok ({} layer(s))",
                report.seed,
                report.tables.len()
            );
        } else {
            println!(
                "seed {:>4}: DIVERGENT ({} violation(s))",
                report.seed,
                report.divergences.len()
            );
        }
    });

    for case in &sweep.cases {
        println!();
        print!("{}", format_report(case));
        if let Some(dir) = &artifacts {
            match write_artifacts(std::path::Path::new(dir), case) {
                Ok(paths) => {
                    for p in paths {
                        println!("artifact: {}", p.display());
                    }
                }
                Err(e) => eprintln!("cannot write artifacts to {dir}: {e}"),
            }
        }
    }
    println!("\n{}/{} seed(s) clean", sweep.clean, sweep.seeds.len());
    if sweep.is_clean() {
        println!("oracle verdict: prediction, simulator and runtime agree within tolerance.");
        ExitCode::SUCCESS
    } else {
        println!("oracle verdict: DIVERGENT — see the rate tables above.");
        ExitCode::FAILURE
    }
}

/// `spinstreams serve` — the long-lived multi-tenant serving shell. Like
/// `oracle` it takes no topology positional: tenants arrive through script
/// commands read from `--script FILE` (or stdin).
fn serve_cmd(args: &[String]) -> ExitCode {
    let workers = match flag_value(args, "--workers").map(|v| v.parse::<usize>()) {
        None => 1,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--workers must be a non-negative integer (0 = one per core)");
            return ExitCode::FAILURE;
        }
    };
    let batch = match flag_value(args, "--batch").map(|v| v.parse::<usize>()) {
        None => 1,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--batch must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let items = match flag_value(args, "--items").map(|v| v.parse::<u64>()) {
        None => 10_000,
        Some(Ok(n)) if n > 0 => n,
        _ => {
            eprintln!("--items must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let script: Box<dyn std::io::BufRead> = match flag_value(args, "--script") {
        Some(path) => match std::fs::File::open(&path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let engine = EngineConfig {
        executor: ExecutorKind::Pool { workers },
        batch_size: batch,
        ..EngineConfig::default()
    };
    let mut svc = StreamService::new(ServeConfig::new(engine));
    let admission = svc.config().admission;
    println!(
        "serve: shared pool ({}), admission capacity {:.2} usable cores \
         (headroom {:.0}%)",
        match workers {
            0 => "auto workers".to_string(),
            n => format!("{n} worker(s)"),
        },
        admission.usable_cores(),
        admission.headroom * 100.0,
    );

    let describe = |verdict: &AdmissionVerdict| match *verdict {
        AdmissionVerdict::Admit { demand_cores } => {
            format!("admitted (demand {demand_cores:.3} cores)")
        }
        AdmissionVerdict::Queue {
            demand_cores,
            available_cores,
        } => format!("queued (demand {demand_cores:.3} cores > {available_cores:.3} available)"),
        AdmissionVerdict::Reject {
            demand_cores,
            capacity_cores,
            deficit_cores,
            predicted_throughput_fraction,
        } => format!(
            "REJECTED (demand {demand_cores:.3} cores > capacity {capacity_cores:.3}: \
             deficit {deficit_cores:.3} cores, predicted throughput fraction \
             {predicted_throughput_fraction:.2})"
        ),
    };

    let mut failed = false;
    use std::io::BufRead as _;
    for line in script.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("script read error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "quit" | "exit" => break,
            "submit" | "submit-seed" => {
                let topo = if words[0] == "submit" {
                    // submit NAME FILE.xml [WEIGHT]
                    let Some(path) = words.get(2) else {
                        eprintln!("usage: submit NAME FILE.xml [WEIGHT]");
                        failed = true;
                        continue;
                    };
                    match load(path) {
                        Ok((topo, _)) => topo,
                        Err(e) => {
                            eprintln!("error: {e}");
                            failed = true;
                            continue;
                        }
                    }
                } else {
                    // submit-seed NAME SEED IDX [WEIGHT]
                    let (Some(seed), Some(idx)) = (
                        words.get(2).and_then(|w| w.parse::<u64>().ok()),
                        words.get(3).and_then(|w| w.parse::<usize>().ok()),
                    ) else {
                        eprintln!("usage: submit-seed NAME SEED IDX [WEIGHT]");
                        failed = true;
                        continue;
                    };
                    tenant_topology(seed, idx)
                };
                let Some(name) = words.get(1) else {
                    eprintln!("usage: {} NAME ...", words[0]);
                    failed = true;
                    continue;
                };
                let mut req = SubmitRequest::new(*name, topo).with_items(items);
                let weight_at = if words[0] == "submit" { 3 } else { 4 };
                if let Some(w) = words.get(weight_at).and_then(|w| w.parse::<u64>().ok()) {
                    req = req.with_weight(w);
                }
                match svc.submit(req) {
                    Ok(receipt) => println!(
                        "tenant {:?}: plan {:#018x} ({}) — {}",
                        receipt.tenant,
                        receipt.plan_checksum,
                        if receipt.cache_hit {
                            "cache hit"
                        } else {
                            "cache miss, optimized"
                        },
                        describe(&receipt.verdict),
                    ),
                    Err(e) => {
                        eprintln!("submit failed: {e}");
                        failed = true;
                    }
                }
            }
            "status" => {
                for t in svc.status() {
                    println!(
                        "  {:<12} {:<9} demand {:.3} cores, weight {}, plan {:#018x}",
                        t.name,
                        format!("{:?}", t.state),
                        t.demand_cores,
                        t.weight,
                        t.plan_checksum,
                    );
                }
                println!("  running demand: {:.3} cores", svc.running_demand());
            }
            "cache" => {
                let s = svc.cache_stats();
                println!(
                    "  plan cache: {} entr{}, {} hit(s), {} miss(es), {} update(s), \
                     {} eviction(s)",
                    s.entries,
                    if s.entries == 1 { "y" } else { "ies" },
                    s.hits,
                    s.misses,
                    s.updates,
                    s.evictions,
                );
            }
            "plan" => match words.get(1).and_then(|n| svc.plan_text(n)) {
                Some(text) => print!("{text}"),
                None => {
                    eprintln!("usage: plan NAME (of a tenant whose plan is cached)");
                    failed = true;
                }
            },
            "launch" => match svc.launch() {
                Ok(runs) => {
                    for run in &runs {
                        println!(
                            "  {:<12} {:>8} item(s) at the source, {:.3} s wall, {}",
                            run.name,
                            run.report
                                .actors
                                .iter()
                                .filter(|a| a.items_in == 0)
                                .map(|a| a.items_out)
                                .sum::<u64>(),
                            run.report.wall.as_secs_f64(),
                            match run.report.source_throughput() {
                                Some(r) => format!("{r:.0} items/s"),
                                None => "rate n/a".to_string(),
                            },
                        );
                    }
                    println!("  {} tenant(s) completed", runs.len());
                }
                Err(e) => {
                    eprintln!("launch failed: {e}");
                    failed = true;
                }
            },
            "stop" => match words.get(1) {
                Some(name) => match svc.stop(name) {
                    Ok(()) => println!("tenant {name:?} stopped"),
                    Err(e) => {
                        eprintln!("stop failed: {e}");
                        failed = true;
                    }
                },
                None => {
                    eprintln!("usage: stop NAME");
                    failed = true;
                }
            },
            other => {
                eprintln!(
                    "unknown command {other:?} (submit, submit-seed, status, cache, plan, \
                     launch, stop, quit)"
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `oracle` generates its own seeded topologies — no XML positional.
    if args.first().map(String::as_str) == Some("oracle") {
        return oracle_cmd(&args[1..]);
    }
    // `serve` reads its tenants from a command script — no XML positional.
    if args.first().map(String::as_str) == Some("serve") {
        return serve_cmd(&args[1..]);
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let (topo, xml_settings) = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // CLI flag wins over the document's <settings batch-size="N"/>.
    let batch = match flag_value(&args, "--batch") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--batch must be a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => xml_settings.batch_size.unwrap_or(1),
    };
    // Same precedence for the executor: --workers N beats the document's
    // <settings workers="N"/>; absent both, thread-per-actor.
    let workers = match flag_value(&args, "--workers") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--workers must be a non-negative integer (0 = one per core)");
                return ExitCode::FAILURE;
            }
        },
        None => xml_settings.workers,
    };
    // And for checkpointing: --checkpoint N beats the document's
    // <settings checkpoint-interval="N"/>; `--checkpoint 0` forces it off.
    let checkpoint = match flag_value(&args, "--checkpoint") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => Some(n).filter(|n| *n > 0),
            Err(_) => {
                eprintln!("--checkpoint must be a non-negative integer (0 = off)");
                return ExitCode::FAILURE;
            }
        },
        None => xml_settings.checkpoint_interval,
    };
    // And for core pinning: --pin-cores 0,1,2 beats the document's
    // <settings pin-cores="..."/>. Pinning is best-effort — on platforms
    // without affinity support the engine warns once and runs unpinned —
    // and only applies to the threaded engine (virtual time has no
    // threads to pin).
    let pinning = match flag_value(&args, "--pin-cores") {
        Some(raw) => match PinningConfig::parse(&raw) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--pin-cores: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => xml_settings
            .pin_cores
            .clone()
            .map(PinningConfig::on_cores)
            .unwrap_or_default(),
    };

    match cmd.as_str() {
        "analyze" => {
            let report = steady_state(&topo);
            print!("{}", format_steady_state(&topo, &report));
            if report.has_bottleneck() {
                println!(
                    "bottlenecks detected at: {}",
                    report
                        .bottlenecks
                        .iter()
                        .map(|b| topo.operator(b.operator).name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            } else {
                println!("no bottlenecks: the topology sustains the source rate.");
            }
            let candidates = fusion_candidates(&topo, 0.9);
            if !candidates.is_empty() {
                println!("\nfusion candidates (ranked by mean utilization):");
                for c in candidates.iter().take(5) {
                    println!(
                        "  {{{}}} mean ρ {:.2}",
                        c.members
                            .iter()
                            .map(|m| topo.operator(*m).name.clone())
                            .collect::<Vec<_>>()
                            .join(", "),
                        c.mean_utilization
                    );
                }
            }
        }
        "optimize" => {
            let plan = eliminate_bottlenecks(&topo);
            print!("{}", format_fission_plan(&topo, &plan));
            if let Some(n) = flag_value(&args, "--max-replicas").and_then(|v| v.parse().ok()) {
                if plan.total_replicas() > n {
                    let bounded = apply_replica_bound(&plan, n);
                    let eval = evaluate_with_replicas(&topo, &bounded);
                    println!(
                        "\nwith the --max-replicas {n} bound: degrees {:?} -> predicted {:.2} items/s",
                        bounded,
                        eval.throughput.items_per_sec()
                    );
                }
            }
        }
        "fuse" => {
            let Some(member_list) = flag_value(&args, "--members") else {
                eprintln!("fuse requires --members i,j,k");
                return ExitCode::FAILURE;
            };
            let members: BTreeSet<OperatorId> = member_list
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .map(OperatorId)
                .collect();
            match fuse(&topo, &members) {
                Ok(outcome) => {
                    println!(
                        "fused operator service time: {} (aggregate of {} members)",
                        outcome.fused_service_time,
                        members.len()
                    );
                    println!(
                        "throughput: {:.2} -> {:.2} items/s ({:+.1}%)",
                        outcome.baseline.throughput.items_per_sec(),
                        outcome.report.throughput.items_per_sec(),
                        outcome.throughput_change() * 100.0
                    );
                    println!(
                        "{}",
                        if outcome.is_feasible() {
                            "verdict: fusion is feasible and does not impair performance."
                        } else {
                            "verdict: ALERT — fusion would introduce a bottleneck."
                        }
                    );
                    println!("\nfused topology:\n{}", outcome.topology);
                }
                Err(e) => {
                    eprintln!("cannot fuse: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "autofuse" => {
            let threshold = flag_value(&args, "--threshold")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.9);
            let result = auto_fuse(&topo, threshold);
            println!(
                "accepted {} fusion step(s); {} -> {} operators; predicted throughput {:.2} items/s",
                result.steps.len(),
                topo.num_operators(),
                result.topology.num_operators(),
                result.report.throughput.items_per_sec()
            );
            println!("\nfinal topology:\n{}", result.topology);
        }
        "codegen" => {
            let plan = eliminate_bottlenecks(&topo);
            let source = emit_rust_source(&topo, &plan.replicas, &[], &CodegenOptions::default());
            match flag_value(&args, "--out") {
                Some(out) => {
                    if let Err(e) = std::fs::write(&out, source) {
                        eprintln!("cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote optimized application to {out}");
                }
                None => print!("{source}"),
            }
        }
        "run" => {
            let items = flag_value(&args, "--items")
                .and_then(|v| v.parse().ok())
                .unwrap_or(20_000);
            // `--adaptive` (or an XML `<settings adaptive="true" .../>` opt-in)
            // switches to the threaded engine with the control loop closed.
            // Knob precedence: CLI flag > XML attribute > built-in default.
            if args.iter().any(|a| a == "--adaptive") || xml_settings.adaptive.is_some() {
                let mut controller = AdaptiveConfig::default();
                if let Some(x) = &xml_settings.adaptive {
                    if let Some(t) = x.drift_threshold {
                        controller.drift.threshold = t;
                    }
                    if let Some(n) = x.cooldown_ticks {
                        controller.cooldown_ticks = n;
                    }
                    if let Some(h) = x.hysteresis {
                        controller.hysteresis = h;
                    }
                    if let Some(n) = x.max_replicas {
                        controller.max_replicas = n;
                    }
                    if let Some(n) = x.min_samples {
                        controller.min_samples = n;
                    }
                }
                if let Some(raw) = flag_value(&args, "--drift-threshold") {
                    match raw.parse::<f64>() {
                        Ok(t) if t.is_finite() && t > 0.0 => controller.drift.threshold = t,
                        _ => {
                            eprintln!("--drift-threshold must be a positive number");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(raw) = flag_value(&args, "--cooldown") {
                    match raw.parse::<u64>() {
                        Ok(n) => controller.cooldown_ticks = n,
                        Err(_) => {
                            eprintln!("--cooldown must be a non-negative integer (ticks)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(raw) = flag_value(&args, "--hysteresis") {
                    match raw.parse::<f64>() {
                        Ok(h) if h.is_finite() && h >= 0.0 => controller.hysteresis = h,
                        _ => {
                            eprintln!("--hysteresis must be a non-negative number");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(raw) = flag_value(&args, "--max-replicas") {
                    match raw.parse::<usize>() {
                        Ok(n) if n > 0 => controller.max_replicas = n,
                        _ => {
                            eprintln!("--max-replicas must be a positive integer");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Some(raw) = flag_value(&args, "--min-samples") {
                    match raw.parse::<u64>() {
                        Ok(n) => controller.min_samples = n,
                        Err(_) => {
                            eprintln!("--min-samples must be a non-negative integer");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let Some(interval) = checkpoint else {
                    eprintln!(
                        "run --adaptive needs epoch barriers to migrate against: pass \
                         --checkpoint N or add <settings checkpoint-interval=\"N\"/>"
                    );
                    return ExitCode::FAILURE;
                };
                let interval_ms = flag_value(&args, "--interval-ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(100)
                    .max(1);
                // A partitioned topology keys its stream from the declared
                // frequency table, so measured key load matches the plan.
                let source_keys = topo.operators().iter().find_map(|op| match &op.state {
                    StateClass::PartitionedStateful { keys } => Some(keys.clone()),
                    _ => None,
                });
                let mut cfg = AdaptiveRunConfig {
                    items,
                    batch_size: batch,
                    workers,
                    checkpoint_interval: interval,
                    controller,
                    telemetry_interval: Duration::from_millis(interval_ms),
                    ..AdaptiveRunConfig::default()
                };
                if let Some(seed) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
                    cfg.seed = seed;
                }
                match run_adaptive(&topo, source_keys, &cfg) {
                    Ok(outcome) => {
                        if let Some(out) = flag_value(&args, "--telemetry") {
                            if let Err(e) = std::fs::write(&out, outcome.telemetry.to_jsonl()) {
                                eprintln!("cannot write {out}: {e}");
                                return ExitCode::FAILURE;
                            }
                            println!(
                                "telemetry: {} snapshot(s), {} trace event(s) -> {out}",
                                outcome.telemetry.snapshots.len(),
                                outcome.telemetry.trace_total
                            );
                        }
                        print!("{}", adaptive_table(path, &cfg, &outcome));
                    }
                    Err(e) => {
                        eprintln!("adaptive run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                return ExitCode::SUCCESS;
            }
            let mut executor = experiment_executor(0x70_01);
            // Accepted for config parity; virtual time ignores batching
            // (see `SimConfig::batch_size`) and models checkpoint epochs
            // deterministically (see `SimConfig::checkpoint_interval`).
            if let Executor::VirtualTime(sim) = &mut executor {
                sim.batch_size = batch;
                sim.checkpoint_interval = checkpoint;
            }
            match flag_value(&args, "--telemetry") {
                Some(out) => {
                    let tcfg = telemetry_config(&args);
                    let run = match predict_vs_measure_telemetry(
                        &topo,
                        items,
                        &executor,
                        &tcfg,
                        DriftConfig::default(),
                    ) {
                        Ok(run) => run,
                        Err(e) => {
                            eprintln!("run failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    if let Err(e) = std::fs::write(&out, &run.export.jsonl) {
                        eprintln!("cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    print!("{}", comparison_table(path, &run.comparison));
                    println!(
                        "telemetry: {} snapshot(s), {} trace event(s) -> {out}",
                        run.export.snapshot_lines, run.telemetry.trace_total
                    );
                    let names: Vec<String> = run
                        .telemetry
                        .last_snapshot()
                        .map(|s| s.actors.iter().map(|a| a.name.clone()).collect())
                        .unwrap_or_default();
                    let drifting = run.export.drifting_actors(&names);
                    if drifting.is_empty() {
                        println!("drift: all operators within threshold.");
                    } else {
                        println!("drift: DRIFTING at {}", drifting.join(", "));
                    }
                }
                None => match predict_vs_measure(&topo, None, &[], &[], items, &executor) {
                    Ok(cmp) => print!("{}", comparison_table(path, &cmp)),
                    Err(e) => {
                        eprintln!("run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            }
        }
        "chaos" => {
            let mut cfg = ChaosConfig::default();
            if let Some(items) = flag_value(&args, "--items").and_then(|v| v.parse().ok()) {
                cfg.items = items;
            }
            if let Some(p) = flag_value(&args, "--panic-prob").and_then(|v| v.parse().ok()) {
                cfg.panic_prob = p;
            }
            if let Some(seed) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
                cfg.seed = seed;
            }
            cfg.batch_size = batch;
            cfg.workers = workers;
            cfg.checkpoint_interval = checkpoint;
            cfg.pinning = pinning.clone();
            cfg.crash_at_epoch = match flag_value(&args, "--crash-at-epoch") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("--crash-at-epoch must be a positive integer");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            cfg.crash_after_tuples = match flag_value(&args, "--crash-after-tuples") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("--crash-after-tuples must be a positive integer");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            if !(0.0..=1.0).contains(&cfg.panic_prob) {
                eprintln!("--panic-prob must be in [0, 1]");
                return ExitCode::FAILURE;
            }
            match flag_value(&args, "--telemetry") {
                Some(out) => {
                    let tcfg = telemetry_config(&args);
                    match run_chaos_with_telemetry(&topo, &cfg, &tcfg) {
                        Ok((outcome, telemetry)) => {
                            if let Err(e) = std::fs::write(&out, telemetry.to_jsonl()) {
                                eprintln!("cannot write {out}: {e}");
                                return ExitCode::FAILURE;
                            }
                            print!("{}", chaos_table(path, &cfg, &outcome));
                            println!(
                                "telemetry: {} snapshot(s), {} trace event(s) -> {out}",
                                telemetry.snapshots.len(),
                                telemetry.trace_total
                            );
                        }
                        Err(e) => {
                            eprintln!("chaos run failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => match run_chaos(&topo, &cfg) {
                    Ok(outcome) => print!("{}", chaos_table(path, &cfg, &outcome)),
                    Err(e) => {
                        eprintln!("chaos run failed: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            }
        }
        "monitor" => {
            let items = flag_value(&args, "--items")
                .and_then(|v| v.parse().ok())
                .unwrap_or(50_000);
            let format = flag_value(&args, "--format").unwrap_or_else(|| "table".into());
            if !matches!(format.as_str(), "table" | "jsonl" | "prom") {
                eprintln!("--format must be table, jsonl or prom");
                return ExitCode::FAILURE;
            }
            let report = steady_state(&topo);
            let plan = match build_actor_graph(
                &topo,
                None,
                &[],
                &[],
                &CodegenOptions {
                    items,
                    seed: 0x3017,
                    ..CodegenOptions::default()
                },
            ) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("codegen failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let predicted = predicted_actor_rates(&topo, &report, &plan);
            let exporter = DriftExporter::new(predicted, DriftConfig::default());
            // Redraw in place only when a human is watching.
            let clear = matches!(format.as_str(), "table")
                && std::io::IsTerminal::is_terminal(&std::io::stdout());
            let tcfg = exporter.attach(telemetry_config(&args), move |snap, verdicts| match format
                .as_str()
            {
                "jsonl" => println!("{}", snap.to_json_with(&drift_json(verdicts))),
                "prom" => println!("{}", prometheus_text(snap, verdicts)),
                _ => {
                    if clear {
                        print!("\x1b[2J\x1b[H");
                    }
                    println!("{}", monitor_table(snap, verdicts));
                }
            });
            let engine = EngineConfig {
                batch_size: batch,
                checkpoint_interval: checkpoint,
                executor: match workers {
                    Some(n) => ExecutorKind::Pool { workers: n },
                    None => ExecutorKind::ThreadPerActor,
                },
                pinning: pinning.clone(),
                ..EngineConfig::default()
            };
            match run_with_telemetry(plan.graph, &engine, &tcfg) {
                Ok((run_report, telemetry)) => {
                    println!(
                        "run complete: {} item(s) delivered in {:.2}s wall; {} snapshot(s), {} trace event(s)",
                        run_report.actors.iter().map(|a| a.items_out).max().unwrap_or(0),
                        run_report.wall.as_secs_f64(),
                        telemetry.snapshots.len(),
                        telemetry.trace_total
                    );
                }
                Err(e) => {
                    eprintln!("monitor run failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "inspect" => {
            let items = flag_value(&args, "--items")
                .and_then(|v| v.parse().ok())
                .unwrap_or(20_000);
            let min_samples = flag_value(&args, "--min-samples")
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            // The flight recorder is the point of `inspect`: span sampling
            // defaults on (every 64th tuple) unless explicitly set.
            let mut tcfg = telemetry_config(&args);
            if flag_value(&args, "--span-sample").is_none() {
                tcfg = tcfg.with_span_sample(64);
            }
            let threaded = args.iter().any(|a| a == "--threaded") || workers.is_some();
            let executor = if threaded {
                Executor::Threads(EngineConfig {
                    batch_size: batch,
                    checkpoint_interval: checkpoint,
                    executor: match workers {
                        Some(n) => ExecutorKind::Pool { workers: n },
                        None => ExecutorKind::ThreadPerActor,
                    },
                    pinning: pinning.clone(),
                    ..EngineConfig::default()
                })
            } else {
                let mut executor = experiment_executor(0x1195EC7);
                if let Executor::VirtualTime(sim) = &mut executor {
                    sim.batch_size = batch;
                    sim.checkpoint_interval = checkpoint;
                }
                executor
            };
            match inspect(&topo, items, &executor, &tcfg, min_samples) {
                Ok(insp) => {
                    if args.iter().any(|a| a == "--json") {
                        println!("{}", inspect_json(&topo, &insp));
                    } else {
                        print!("{}", inspect_table(&topo, &insp));
                    }
                }
                Err(e) => {
                    eprintln!("inspect failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "dot" => {
            let report = steady_state(&topo);
            if args.iter().any(|a| a == "--optimized") {
                let plan = eliminate_bottlenecks(&topo);
                print!("{}", topology_dot(&topo, Some(&report), Some(&plan)));
            } else {
                print!("{}", topology_dot(&topo, Some(&report), None));
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
