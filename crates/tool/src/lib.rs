//! # spinstreams-tool
//!
//! The experiment harness tying the whole SpinStreams workflow together
//! (§4.1): profile a running application, feed the measurements to the cost
//! models, deploy the (optimized) topology on the runtime, and compare the
//! model's predictions against reality.
//!
//! * [`calibrate`] — the profiling step: executes the topology once and
//!   rewrites each operator's service time and selectivity from the
//!   measured actor metrics ("executing the application as is for a
//!   reasonable amount of time and instrumenting the code to collect
//!   profiling measures").
//! * [`predict_vs_measure`] — runs Algorithm 1 on the calibrated topology
//!   *and* executes the deployment, returning per-operator and
//!   whole-topology comparisons (the data behind Figures 7–9).
//! * [`run_chaos`] — the fault-injection harness: wraps every deployed
//!   worker in a seeded fault injector, supervises it with a restart
//!   policy, and compares measured throughput degradation against the
//!   path-probability prediction.
//! * [`predict_vs_measure_telemetry`] / [`DriftExporter`] — the live
//!   telemetry exporters: run with the runtime's sampler enabled, tick an
//!   online [`DriftMonitor`](spinstreams_analysis::DriftMonitor) on every
//!   snapshot, and render JSON-lines / Prometheus text
//!   ([`prometheus_text`]) / a live table ([`monitor_table`]).
//! * [`run_adaptive`] — the closed control loop behind `spinstreams run
//!   --adaptive`: every telemetry tick re-profiles the annotations, and a
//!   sustained drift re-runs Algorithms 1–3 and migrates the live graph
//!   (route swaps + key-state handoffs) without stopping the stream.
//! * [`run_adaptation_layer`] — the differential oracle's adaptation
//!   layer: a mid-run service-time shift must trigger a live migration
//!   that preserves exactly-once sink output and lands within the drift
//!   threshold of the new plan's Algorithm 1 prediction.
//! * [`run_multitenant_layer`] — the differential oracle's multi-tenant
//!   layer: N seeded paced pipelines launched together on one shared
//!   serving pool must reproduce their solo sink counts exactly, and the
//!   measured aggregate must land within tolerance of the summed
//!   Algorithm 1 predictions.
//! * [`inspect`] — the live bottleneck-attribution harness behind
//!   `spinstreams inspect`: re-profiles the §4.1 annotations online,
//!   joins Algorithm 1's predicted bottleneck with the measured one, and
//!   names the stale annotation when they disagree.
//! * [`ascii_series`] / [`comparison_table`] — plain-text rendering used by
//!   the figure/table binaries in `spinstreams-bench`.

#![warn(missing_docs)]

mod adaptation;
mod adaptive;
mod chaos;
mod dot;
mod format;
mod harness;
mod inspect;
mod multitenant;
mod telemetry;

pub use adaptation::{adaptation_table, run_adaptation_layer, AdaptationReport};
pub use adaptive::{
    adaptive_table, run_adaptive, AdaptiveOutcome, AdaptiveRunConfig, OperatorFault,
};
pub use chaos::{
    chaos_table, predicted_delivered_fraction, run_chaos, run_chaos_with_telemetry, ChaosConfig,
    ChaosOutcome,
};
pub use dot::topology_dot;
pub use format::{ascii_series, comparison_table, monitor_table, prometheus_text};
pub use harness::{
    calibrate, experiment_executor, items_for_duration, predict_vs_measure, Comparison,
    HarnessError, OperatorComparison,
};
pub use inspect::{
    inspect, inspect_json, inspect_table, observed_operators, operator_counters, Inspection,
    ANNOTATION_DRIFT_THRESHOLD,
};
pub use multitenant::{
    multitenant_table, run_multitenant_layer, run_multitenant_layer_with, tenant_topology,
    MultiTenantConfig, MultiTenantReport, TenantOutcome,
};
pub use telemetry::{
    drift_json, predict_vs_measure_telemetry, predicted_actor_rates, DriftExporter,
    TelemetryExport, TelemetryRun,
};
