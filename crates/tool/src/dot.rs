//! Graphviz DOT rendering of topologies — the textual analogue of the
//! SpinStreams GUI's annotated topology view (§4.1: the tool "shows the
//! suggested optimizations along with the predicted outcome").
//!
//! Vertices are labeled with the operator name, service time and (when an
//! analysis report is supplied) the predicted utilization and departure
//! rate; saturated operators (ρ ≈ 1) are highlighted, and a fission plan
//! adds the replication degrees.

use spinstreams_analysis::{FissionPlan, SteadyStateReport};
use spinstreams_core::{StateClass, Topology};
use std::fmt::Write as _;

/// Renders `topo` as a Graphviz `digraph`, optionally annotated with a
/// steady-state report and/or a fission plan.
///
/// The output is deterministic and renders with `dot -Tsvg`.
pub fn topology_dot(
    topo: &Topology,
    report: Option<&SteadyStateReport>,
    plan: Option<&FissionPlan>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph topology {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=box, style=rounded, fontsize=10];");
    for id in topo.operator_ids() {
        let op = topo.operator(id);
        let mut label = format!("{}\\nµ⁻¹ = {}", op.name, op.service_time);
        match &op.state {
            StateClass::PartitionedStateful { keys } => {
                let _ = write!(label, "\\npartitioned ({} keys)", keys.num_keys());
            }
            StateClass::Stateful => label.push_str("\\nstateful"),
            StateClass::Stateless => {}
        }
        if !op.selectivity.is_identity() {
            let _ = write!(
                label,
                "\\nsel {}:{}",
                op.selectivity.input, op.selectivity.output
            );
        }
        let mut saturated = false;
        if let Some(r) = report {
            let m = r.metric(id);
            let _ = write!(
                label,
                "\\nρ = {:.2}, δ = {:.1}/s",
                m.utilization, m.departure
            );
            saturated = m.utilization >= 1.0 - 1e-6;
        }
        if let Some(p) = plan {
            if p.replicas[id.index()] > 1 {
                let _ = write!(label, "\\n×{} replicas", p.replicas[id.index()]);
            }
            saturated = p.residual_bottlenecks.contains(&id);
        }
        let style = if saturated {
            ", style=\"rounded,filled\", fillcolor=\"#ffcccc\""
        } else {
            ""
        };
        let _ = writeln!(s, "  op{} [label=\"{}\"{}];", id.index(), label, style);
    }
    for e in topo.edges() {
        let attrs = if (e.probability - 1.0).abs() < 1e-12 {
            String::new()
        } else {
            format!(" [label=\"{:.2}\"]", e.probability)
        };
        let _ = writeln!(s, "  op{} -> op{}{};", e.from.index(), e.to.index(), attrs);
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_analysis::{eliminate_bottlenecks, steady_state};
    use spinstreams_core::{KeyDistribution, OperatorSpec, Selectivity, ServiceTime};

    fn sample() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let f = b.add_operator(
            OperatorSpec::stateless("filter", ServiceTime::from_millis(0.5))
                .with_selectivity(Selectivity::output(0.4)),
        );
        let a = b.add_operator(OperatorSpec::partitioned(
            "agg",
            ServiceTime::from_millis(4.0),
            KeyDistribution::uniform(16),
        ));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, a, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn plain_dot_contains_vertices_and_edges() {
        let dot = topology_dot(&sample(), None, None);
        assert!(dot.starts_with("digraph topology {"));
        assert!(dot.contains("op0 ["));
        assert!(dot.contains("op0 -> op1;"));
        assert!(dot.contains("partitioned (16 keys)"));
        assert!(dot.contains("sel 1:0.4"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn report_annotations_highlight_bottlenecks() {
        let t = sample();
        let report = steady_state(&t);
        let dot = topology_dot(&t, Some(&report), None);
        assert!(dot.contains("ρ = "));
        // The source is throttled to saturation of... actually the source
        // always runs at ρ = 1 here (it is the constraint after the filter
        // relieves the agg), so at least one vertex is highlighted.
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn plan_annotations_show_replicas() {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let w = b.add_operator(OperatorSpec::stateless(
            "slow",
            ServiceTime::from_millis(3.0),
        ));
        b.add_edge(s, w, 1.0).unwrap();
        let t = b.build().unwrap();
        let plan = eliminate_bottlenecks(&t);
        let dot = topology_dot(&t, None, Some(&plan));
        assert!(dot.contains("×3 replicas"));
    }

    #[test]
    fn probability_labels_only_on_non_unit_edges() {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let l = b.add_operator(OperatorSpec::stateless("l", ServiceTime::from_millis(1.0)));
        let r = b.add_operator(OperatorSpec::stateless("r", ServiceTime::from_millis(1.0)));
        b.add_edge(s, l, 0.3).unwrap();
        b.add_edge(s, r, 0.7).unwrap();
        let t = b.build().unwrap();
        let dot = topology_dot(&t, None, None);
        assert!(dot.contains("label=\"0.30\""));
        assert!(dot.contains("label=\"0.70\""));
    }
}
