//! Telemetry export: JSON-lines emission with online drift verdicts.
//!
//! The runtime's telemetry layer samples rolling per-actor rates; the
//! analysis crate's [`DriftMonitor`] compares them against Algorithm 1's
//! predictions. This module is the glue: it maps the model's per-operator
//! predicted departure rates onto deployed actor indices, ticks the
//! monitor from the sampler's `on_snapshot` callback, and renders each
//! snapshot as one JSON-lines record with the drift verdicts spliced in —
//! the §5.2 predicted-vs-measured comparison, performed live instead of
//! post-hoc.

use crate::harness::{Comparison, HarnessError, OperatorComparison};
use spinstreams_analysis::{
    steady_state, DriftConfig, DriftMonitor, DriftStatus, DriftVerdict, SteadyStateReport,
};
use spinstreams_codegen::{build_actor_graph, CodegenOptions, GeneratedPlan};
use spinstreams_core::Topology;
use spinstreams_runtime::{
    execute_with_telemetry, Executor, TelemetryConfig, TelemetryReport, TelemetrySnapshot,
};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Maps Algorithm 1's per-operator predicted departure rates (items/s)
/// onto deployed actor indices via the codegen plan's departure-actor
/// mapping. Actors that measure no operator's departures (emitters,
/// collector-less replicas) stay `None`. When several operators share a
/// departure actor (a fusion group's meta actor), the highest-id member —
/// the group's exit operator — wins, matching what the meta actor's
/// `items_out` counter measures.
pub fn predicted_actor_rates(
    topo: &Topology,
    report: &SteadyStateReport,
    plan: &GeneratedPlan,
) -> Vec<Option<f64>> {
    let mut rates = vec![None; plan.num_actors];
    for id in topo.operator_ids() {
        rates[plan.departure_actor[id.0].0] = Some(report.metric(id).departure);
    }
    rates
}

/// Renders `verdicts` as the raw JSON fragment `"drift":[...]` accepted by
/// [`TelemetrySnapshot::to_json_with`]. Rates use three decimals and
/// relative errors four, so exports are byte-stable across identical runs.
pub fn drift_json(verdicts: &[DriftVerdict]) -> String {
    let mut s = String::from("\"drift\":[");
    for (i, v) in verdicts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"actor\":{},\"status\":\"{}\"", v.index, v.status);
        match v.predicted {
            Some(p) => {
                let _ = write!(s, ",\"predicted\":{p:.3}");
            }
            None => s.push_str(",\"predicted\":null"),
        }
        match v.measured {
            Some(m) => {
                let _ = write!(s, ",\"measured\":{m:.3}");
            }
            None => s.push_str(",\"measured\":null"),
        }
        match v.rel_error {
            Some(e) => {
                let _ = write!(s, ",\"rel_error\":{e:.4}");
            }
            None => s.push_str(",\"rel_error\":null"),
        }
        s.push('}');
    }
    s.push(']');
    s
}

struct DriftState {
    monitor: DriftMonitor,
    lines: Vec<String>,
    last: Vec<DriftVerdict>,
}

/// Ticks a [`DriftMonitor`] from the telemetry sampler's snapshot
/// callback and accumulates one JSON-lines record per snapshot with the
/// verdicts attached.
///
/// Create it with the predicted per-actor rates, [`attach`](Self::attach)
/// it to a [`TelemetryConfig`], run the deployment, then
/// [`finish`](Self::finish) to collect the export.
pub struct DriftExporter {
    state: Arc<Mutex<DriftState>>,
}

impl DriftExporter {
    /// Creates an exporter judging measured rates against `predicted`
    /// (indexed by actor id, as produced by [`predicted_actor_rates`]).
    pub fn new(predicted: Vec<Option<f64>>, config: DriftConfig) -> Self {
        Self {
            state: Arc::new(Mutex::new(DriftState {
                monitor: DriftMonitor::new(predicted, config),
                lines: Vec::new(),
                last: Vec::new(),
            })),
        }
    }

    /// Returns `telemetry` with this exporter installed as the
    /// `on_snapshot` callback. `observe` additionally sees each snapshot
    /// and its verdicts as they are taken — the hook live renderers use.
    pub fn attach(
        &self,
        telemetry: TelemetryConfig,
        observe: impl Fn(&TelemetrySnapshot, &[DriftVerdict]) + Send + Sync + 'static,
    ) -> TelemetryConfig {
        let state = Arc::clone(&self.state);
        telemetry.with_on_snapshot(move |snap| {
            let mut st = state.lock().expect("drift exporter poisoned");
            // A rolling rate of zero means the actor was idle this window
            // (filling, draining, or starved): no evidence either way.
            let measured: Vec<Option<f64>> = snap
                .actors
                .iter()
                .map(|a| (a.departure_rate > 0.0).then_some(a.departure_rate))
                .collect();
            let verdicts = st.monitor.tick(&measured);
            st.lines.push(snap.to_json_with(&drift_json(&verdicts)));
            st.last = verdicts;
            let st = &*st;
            observe(snap, &st.last);
        })
    }

    /// Consumes the exporter, returning the accumulated export with the
    /// run's retained trace events appended after the snapshot lines.
    pub fn finish(self, telemetry: &TelemetryReport) -> TelemetryExport {
        let state = Arc::try_unwrap(self.state)
            .unwrap_or_else(|arc| {
                // The sampler thread has been joined by the time the run
                // returns, but a caller may still hold the attached config
                // (and with it the callback); fall back to copying.
                let st = arc.lock().expect("drift exporter poisoned");
                Mutex::new(DriftState {
                    monitor: st.monitor.clone(),
                    lines: st.lines.clone(),
                    last: st.last.clone(),
                })
            })
            .into_inner()
            .expect("drift exporter poisoned");
        let mut jsonl = String::new();
        for line in &state.lines {
            jsonl.push_str(line);
            jsonl.push('\n');
        }
        for ev in &telemetry.trace {
            jsonl.push_str(&ev.to_json());
            jsonl.push('\n');
        }
        TelemetryExport {
            jsonl,
            snapshot_lines: state.lines.len(),
            final_drift: state.last,
        }
    }
}

/// The rendered output of a telemetry-enabled run.
#[derive(Debug, Clone)]
pub struct TelemetryExport {
    /// JSON-lines text: one `"type":"snapshot"` record per sample (with
    /// drift verdicts), followed by the retained `"type":"trace"` events.
    pub jsonl: String,
    /// Number of snapshot records in [`jsonl`](Self::jsonl).
    pub snapshot_lines: usize,
    /// The verdicts from the final snapshot.
    pub final_drift: Vec<DriftVerdict>,
}

impl TelemetryExport {
    /// Names of actors drifting at the final snapshot, resolved through
    /// `names` (indexed by actor id).
    pub fn drifting_actors<'a>(&self, names: &'a [String]) -> Vec<&'a str> {
        self.final_drift
            .iter()
            .filter(|v| v.status == DriftStatus::Drifting)
            .filter_map(|v| names.get(v.index).map(|s| s.as_str()))
            .collect()
    }
}

/// Everything a telemetry-enabled predict-vs-measure run produces.
#[derive(Debug, Clone)]
pub struct TelemetryRun {
    /// The ordinary prediction-vs-measurement comparison.
    pub comparison: Comparison,
    /// The raw telemetry (snapshots + trace).
    pub telemetry: TelemetryReport,
    /// The rendered JSON-lines export with drift verdicts.
    pub export: TelemetryExport,
}

/// [`predict_vs_measure`](crate::predict_vs_measure) with live telemetry:
/// runs Algorithm 1, deploys the topology with the sampler enabled, ticks
/// a [`DriftMonitor`] on every snapshot, and returns the comparison plus
/// the JSON-lines export.
///
/// # Errors
///
/// Propagates codegen/engine failures; fails with
/// [`HarnessError::Measurement`] if the source throughput is unmeasurable.
pub fn predict_vs_measure_telemetry(
    topo: &Topology,
    items: u64,
    executor: &Executor,
    telemetry: &TelemetryConfig,
    drift: DriftConfig,
) -> Result<TelemetryRun, HarnessError> {
    let report = steady_state(topo);
    let seed = match executor {
        Executor::Threads(c) => c.seed,
        Executor::VirtualTime(c) => c.seed,
    };
    let plan = build_actor_graph(
        topo,
        None,
        &[],
        &[],
        &CodegenOptions {
            items,
            seed,
            ..CodegenOptions::default()
        },
    )?;
    let predicted = predicted_actor_rates(topo, &report, &plan);

    let exporter = DriftExporter::new(predicted, drift);
    let tcfg = exporter.attach(telemetry.clone(), |_, _| {});
    let (run_report, telemetry_report) = execute_with_telemetry(plan.graph, executor, &tcfg)?;
    let export = exporter.finish(&telemetry_report);

    let measured_throughput =
        run_report
            .source_throughput()
            .ok_or_else(|| HarnessError::Measurement {
                reason: "source produced fewer than two items".into(),
            })?;
    let operators = topo
        .operator_ids()
        .map(|id| {
            let actor = run_report.actor(plan.departure_actor[id.0]);
            OperatorComparison {
                operator: id,
                name: topo.operator(id).name.clone(),
                predicted_departure: report.metric(id).departure,
                measured_departure: actor.departure_rate(),
            }
        })
        .collect();

    Ok(TelemetryRun {
        comparison: Comparison {
            predicted_throughput: report.throughput.items_per_sec(),
            measured_throughput,
            operators,
            report,
            run: run_report,
        },
        telemetry: telemetry_report,
        export,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{OperatorSpec, ServiceTime};
    use spinstreams_runtime::SimConfig;
    use std::time::Duration;

    fn pipeline() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
        );
        let m = b.add_operator(
            OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
                .with_kind("identity-map")
                .with_param("work_ns", 400_000.0),
        );
        let k = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
                .with_kind("identity-map")
                .with_param("work_ns", 10_000.0),
        );
        b.add_edge(s, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        b.build().unwrap()
    }

    fn sim() -> Executor {
        Executor::VirtualTime(SimConfig {
            mailbox_capacity: 32,
            seed: 0xD1A7,
            intrinsic_time: false,
            ..SimConfig::default()
        })
    }

    #[test]
    fn predicted_rates_map_operators_to_departure_actors() {
        let topo = pipeline();
        let report = steady_state(&topo);
        let plan = build_actor_graph(
            &topo,
            None,
            &[],
            &[],
            &CodegenOptions {
                items: 10,
                seed: 1,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let rates = predicted_actor_rates(&topo, &report, &plan);
        assert_eq!(rates.len(), plan.num_actors);
        assert_eq!(rates.iter().filter(|r| r.is_some()).count(), 3);
        // The 400 µs bottleneck caps every downstream departure at 2500/s.
        let slow = rates[plan.departure_actor[1].0].unwrap();
        assert!((slow - 2500.0).abs() < 1.0, "slow departs at {slow}");
    }

    #[test]
    fn drift_json_renders_all_verdict_shapes() {
        let verdicts = vec![
            DriftVerdict {
                index: 0,
                predicted: Some(100.0),
                measured: Some(95.0),
                rel_error: Some(0.05),
                status: DriftStatus::Ok,
            },
            DriftVerdict {
                index: 1,
                predicted: None,
                measured: None,
                rel_error: None,
                status: DriftStatus::NoData,
            },
        ];
        let j = drift_json(&verdicts);
        assert_eq!(
            j,
            "\"drift\":[{\"actor\":0,\"status\":\"ok\",\"predicted\":100.000,\
             \"measured\":95.000,\"rel_error\":0.0500},\
             {\"actor\":1,\"status\":\"no-data\",\"predicted\":null,\
             \"measured\":null,\"rel_error\":null}]"
        );
    }

    #[test]
    fn telemetry_run_attaches_drift_verdicts_to_every_snapshot() {
        let topo = pipeline();
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(50));
        let run = predict_vs_measure_telemetry(
            &topo,
            4_000,
            &sim(),
            &tcfg,
            DriftConfig {
                warmup_ticks: 1,
                ..DriftConfig::default()
            },
        )
        .unwrap();
        assert!(run.export.snapshot_lines >= 2, "expected several snapshots");
        for line in run.export.jsonl.lines() {
            if line.starts_with("{\"type\":\"snapshot\"") {
                assert!(
                    line.contains("\"drift\":["),
                    "snapshot without drift: {line}"
                );
                assert!(line.ends_with('}'));
            }
        }
        // Virtual time matches the model tightly: nothing drifts.
        assert!(
            run.export
                .final_drift
                .iter()
                .all(|v| v.status != DriftStatus::Drifting),
            "unexpected drift: {:?}",
            run.export.final_drift
        );
        assert!(run.comparison.relative_error() < 0.1);
    }

    #[test]
    fn drift_flags_a_mispredicted_operator() {
        let topo = pipeline();
        // Lie to the monitor: pretend the model predicted 10x the real rate.
        let report = steady_state(&topo);
        let plan = build_actor_graph(
            &topo,
            None,
            &[],
            &[],
            &CodegenOptions {
                items: 4_000,
                seed: 0xD1A7,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let mut predicted = predicted_actor_rates(&topo, &report, &plan);
        for p in predicted.iter_mut().flatten() {
            *p *= 10.0;
        }
        let exporter = DriftExporter::new(
            predicted,
            DriftConfig {
                warmup_ticks: 1,
                consecutive: 2,
                ..DriftConfig::default()
            },
        );
        let tcfg = exporter.attach(
            TelemetryConfig::default().with_interval(Duration::from_millis(50)),
            |_, _| {},
        );
        let (_, telemetry) = execute_with_telemetry(plan.graph, &sim(), &tcfg).unwrap();
        let export = exporter.finish(&telemetry);
        assert!(
            export
                .final_drift
                .iter()
                .any(|v| v.status == DriftStatus::Drifting),
            "10x misprediction must drift: {:?}",
            export.final_drift
        );
        let names: Vec<String> = (0..export.final_drift.len())
            .map(|i| format!("actor{i}"))
            .collect();
        assert!(!export.drifting_actors(&names).is_empty());
    }
}
