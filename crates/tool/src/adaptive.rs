//! The live adaptive re-optimization harness behind `spinstreams run
//! --adaptive`: closes the control loop end to end.
//!
//! The static pipeline (Algorithms 1–3) runs once up front to pick the
//! initial deployment; the graph is then built with every scalable
//! operator *pre-provisioned* to the controller's replica budget (spare
//! slots wired but idle — see `CodegenOptions::provision`), checkpointing
//! on, and a [`ReconfigHandle`] installed. Every telemetry snapshot drives
//! one [`AdaptiveController::tick`] on **windowed** counters; when the
//! controller emits a [`PlanChange`], this module translates it into
//! [`ReconfigOp`]s — a route swap per rescaled operator, plus
//! pause–drain–resume [`KeyHandoff`]s for partitioned-stateful state —
//! and posts them to the running engine *without stopping the stream*.
//!
//! ```text
//!   telemetry snapshot ──▶ windowed OperatorCounters
//!                                   │
//!                                   ▼
//!                    AdaptiveController::tick (analysis)
//!                                   │ Some(PlanChange)?
//!                                   ▼
//!          route diff + key-assignment diff (this module)
//!                                   │
//!                                   ▼
//!        ReconfigHandle::post(SwapRoute { handoffs, … })
//!                                   │ applied at an epoch barrier
//!                                   ▼
//!               live graph morphs; drift baseline rebases
//! ```

use crate::harness::HarnessError;
use spinstreams_analysis::{
    apply_replica_bound, eliminate_bottlenecks, key_partitioning, AdaptiveConfig,
    AdaptiveController, OperatorCounters, PlanChange,
};
use spinstreams_codegen::{build_actor_graph, CodegenOptions};
use spinstreams_core::{KeyDistribution, StateClass, Topology, Tuple, TUPLE_ARITY};
use spinstreams_runtime::operators::{FaultConfig, FaultInjector};
use spinstreams_runtime::{
    run_with_telemetry, ActorId, Backoff, EngineConfig, ExecutorKind, KeyHandoff, Outputs,
    ReconfigHandle, ReconfigOp, Route, RunReport, StateSnapshot, StreamOperator, SupervisorSpec,
    TelemetryConfig, TelemetryReport, TelemetrySnapshot,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A fault targeted at one operator of an adaptive run — the chaos lever
/// the oracle uses to shift the workload mid-stream and to race a
/// migration against a supervised restart.
#[derive(Debug, Clone, Default)]
pub struct OperatorFault {
    /// Name of the operator whose deployed actors get wrapped in a
    /// [`FaultInjector`].
    pub operator: String,
    /// `(tuples, extra_ns)`: after processing `tuples` items, every
    /// subsequent item costs `extra_ns` additional busy time — a
    /// persistent service-time shift the controller should detect.
    pub slow_after: Option<(u64, u64)>,
    /// Panic once on the n-th processed tuple (per wrapped actor);
    /// supervision restarts and recovers the actor.
    pub crash_after_tuples: Option<u64>,
}

/// Configuration of one adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveRunConfig {
    /// Number of items the source generates.
    pub items: u64,
    /// RNG seed for codegen and the engine.
    pub seed: u64,
    /// The control-loop knobs (drift threshold, cooldown, hysteresis,
    /// replica budget, sample floor). `controller.max_replicas` doubles as
    /// the per-operator slot provision.
    pub controller: AdaptiveConfig,
    /// Envelope batch size (`EngineConfig::batch_size`).
    pub batch_size: usize,
    /// `None` = thread-per-actor; `Some(n)` = pool executor (`0` = auto).
    pub workers: Option<usize>,
    /// Epoch-aligned checkpoint cadence in source items. Required (not
    /// optional): migrations apply at epoch barriers.
    pub checkpoint_interval: u64,
    /// Telemetry sampling interval — the controller's tick period.
    pub telemetry_interval: Duration,
    /// Trailing snapshots per profiling window: counters fed to the
    /// controller are deltas over the last `window_ticks` intervals, so a
    /// mid-run shift is not diluted by the entire history.
    pub window_ticks: usize,
    /// Faults to inject (empty = clean run).
    pub faults: Vec<OperatorFault>,
    /// Record every tuple the topology's sink operators process into
    /// [`AdaptiveOutcome::sink_tuples`] — the oracle adaptation layer's
    /// evidence for the exactly-once / per-key-aggregate comparison.
    /// Costs a mutex lock per sink tuple; leave off outside oracle runs.
    pub capture_sink: bool,
}

impl Default for AdaptiveRunConfig {
    fn default() -> Self {
        AdaptiveRunConfig {
            items: 50_000,
            seed: 0xADA9,
            controller: AdaptiveConfig::default(),
            batch_size: 1,
            workers: None,
            checkpoint_interval: 500,
            telemetry_interval: Duration::from_millis(20),
            window_ticks: 4,
            faults: Vec::new(),
            capture_sink: false,
        }
    }
}

/// Everything one adaptive run produces.
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// The engine's run report (per-actor counters, supervision, dead
    /// letters, checkpoint totals).
    pub run: RunReport,
    /// The telemetry report (snapshots, trace events — including
    /// `reconfigured` and `state-migrated`).
    pub telemetry: TelemetryReport,
    /// The static plan the run started with (degree per operator).
    pub initial_replicas: Vec<usize>,
    /// The degrees after the last migration (== initial when none fired).
    pub final_replicas: Vec<usize>,
    /// Every plan change the controller emitted, in order.
    pub changes: Vec<PlanChange>,
    /// The telemetry tick at which each change was posted.
    pub change_ticks: Vec<u64>,
    /// Route-swap ops posted to the engine.
    pub swaps_posted: u64,
    /// Route swaps fully applied (pause buffers released) by shutdown.
    pub swaps_applied: u64,
    /// Key-state handoffs merged into their new owners by shutdown.
    pub handoffs_migrated: u64,
    /// Controller ticks consumed.
    pub ticks: u64,
    /// Silent drift-baseline rebases (drift without a better plan).
    pub rebases: u64,
    /// Total items that arrived at the topology's sinks.
    pub sink_arrivals: u64,
    /// Measured items/s over the post-migration tail of the run (from the
    /// first snapshot at least two ticks after the last change to the last
    /// snapshot), or `None` when no change fired or the tail is too short
    /// to measure. The §5.2 acceptance reference is
    /// `changes.last().predicted_throughput`.
    pub post_change_throughput: Option<f64>,
    /// Timestamp-free projection `(key, seq, values)` of every tuple the
    /// sink operators processed, in per-sink arrival order. Empty unless
    /// [`AdaptiveRunConfig::capture_sink`] was set.
    pub sink_tuples: Vec<(u64, u64, [f64; TUPLE_ARITY])>,
}

/// Shared store behind [`CaptureTap`].
type Captured = Arc<Mutex<Vec<(u64, u64, [f64; TUPLE_ARITY])>>>;

/// Transparent recording wrapper around a sink operator: records each
/// incoming tuple's timestamp-free projection, then delegates. Every state
/// hook forwards to the inner operator so supervision restarts and live
/// key handoffs behave exactly as they would unwrapped.
struct CaptureTap {
    inner: Box<dyn StreamOperator>,
    store: Captured,
}

impl StreamOperator for CaptureTap {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((item.key, item.seq, item.values));
        self.inner.process(item, out);
    }
    fn flush(&mut self, out: &mut Outputs) {
        self.inner.flush(out);
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        self.inner.snapshot()
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        self.inner.restore(snapshot)
    }
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        self.inner.extract_keys(keys)
    }
    fn inject_state(&mut self, snapshot: &StateSnapshot) -> bool {
        self.inner.inject_state(snapshot)
    }
}

/// Mutable state shared between the telemetry hook and the finished run.
struct LoopState {
    controller: AdaptiveController,
    /// Ring of cumulative per-operator `(items_in, items_out, busy_ns)`
    /// rows, newest last; deltas over the ring are the profiling window.
    history: VecDeque<Vec<(u64, u64, u64)>>,
    /// Current key→slot assignment per operator (`None` for operators
    /// without key state).
    owners: Vec<Option<Vec<usize>>>,
    next_handoff: u64,
    changes: Vec<PlanChange>,
    change_ticks: Vec<u64>,
    swaps_posted: u64,
}

/// Immutable per-run lookup tables captured by the telemetry hook.
struct PlanInfo {
    source: usize,
    input_actor: Vec<usize>,
    departure_actor: Vec<usize>,
    /// All provisioned slots (active then spare) per operator; empty for
    /// plain single-actor deployments.
    slots: Vec<Vec<ActorId>>,
    emitter: Vec<Option<ActorId>>,
    partitioned: Vec<bool>,
}

/// Cumulative per-operator counters from one snapshot: logical input from
/// the operator's input actor, logical output from its departure actor,
/// busy time summed over its replica slots (they split the work).
fn cumulative_row(info: &PlanInfo, snap: &TelemetrySnapshot) -> Vec<(u64, u64, u64)> {
    (0..info.input_actor.len())
        .map(|i| {
            let inp = &snap.actors[info.input_actor[i]];
            let dep = &snap.actors[info.departure_actor[i]];
            let busy = if info.slots[i].is_empty() {
                inp.busy_ns
            } else {
                info.slots[i].iter().map(|a| snap.actors[a.0].busy_ns).sum()
            };
            (inp.items_in, dep.items_out, busy)
        })
        .collect()
}

/// Translates one [`PlanChange`] into the `ReconfigOp`s that morph the
/// running graph, updating the tracked key assignments as it goes.
fn translate_change(
    st: &mut LoopState,
    info: &PlanInfo,
    change: &PlanChange,
    at_epoch: u64,
) -> Vec<(usize, ReconfigOp)> {
    let mut ops = Vec::new();
    for i in 0..change.replicas.len() {
        if change.replicas[i] == change.old_replicas[i] {
            continue;
        }
        let Some(emitter) = info.emitter[i] else {
            // Plain single-actor deployment (source/stateful): nothing to
            // rescale. Algorithm 2 never changes these degrees anyway.
            continue;
        };
        let slots = &info.slots[i];
        let (route, pause_keys, handoffs) = if info.partitioned[i] {
            // New owner map: from the plan's assignment, or all-on-slot-0
            // when the new degree is 1 (the controller only attaches
            // assignments for degrees > 1).
            let old = st.owners[i].take().unwrap_or_default();
            let (new_owner, active) = match &change.assignments[i] {
                Some(assign) => (assign.owner.clone(), assign.replicas),
                None => (vec![0; old.len()], 1),
            };
            let mut groups: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
            for (k, (&o, &w)) in old.iter().zip(&new_owner).enumerate() {
                if o != w {
                    groups.entry((o, w)).or_default().push(k as u64);
                }
            }
            let pause: Vec<u64> = groups.values().flatten().copied().collect();
            let handoffs: Vec<KeyHandoff> = groups
                .into_iter()
                .map(|((from, to), keys)| {
                    st.next_handoff += 1;
                    KeyHandoff {
                        id: st.next_handoff,
                        from: slots[from].0,
                        to: slots[to].0,
                        keys,
                    }
                })
                .collect();
            let route = if active == 1 {
                Route::Unicast(slots[0])
            } else {
                Route::KeyMap {
                    key_map: new_owner.clone(),
                    destinations: slots[..active].to_vec(),
                }
            };
            st.owners[i] = Some(new_owner);
            (route, pause, handoffs)
        } else {
            // Stateless rescale: replicas are interchangeable, so the swap
            // is a pure route replacement — no pause, no handoffs.
            let n = change.replicas[i];
            let route = if n == 1 {
                Route::Unicast(slots[0])
            } else {
                Route::RoundRobin(slots[..n].to_vec())
            };
            (route, Vec::new(), Vec::new())
        };
        ops.push((
            emitter.0,
            ReconfigOp::SwapRoute {
                port: 0,
                route,
                at_epoch,
                pause_keys,
                handoffs,
            },
        ));
    }
    ops
}

/// Runs `topo` with the adaptive control loop closed: static plan first,
/// live re-profiling every telemetry tick, and in-flight migration when
/// the re-optimized plan beats the running one.
///
/// # Errors
///
/// Propagates codegen and engine failures; rejects a zero
/// `checkpoint_interval` (migrations need epoch barriers) with
/// [`HarnessError::Measurement`].
pub fn run_adaptive(
    topo: &Topology,
    source_keys: Option<KeyDistribution>,
    cfg: &AdaptiveRunConfig,
) -> Result<AdaptiveOutcome, HarnessError> {
    if cfg.checkpoint_interval == 0 {
        return Err(HarnessError::Measurement {
            reason: "adaptive runs need checkpoint_interval > 0: migrations apply at epoch \
                     barriers"
                .into(),
        });
    }
    // The static §3 pipeline picks the starting plan.
    let fission = eliminate_bottlenecks(topo);
    let initial = apply_replica_bound(&fission, cfg.controller.max_replicas);

    // Pre-provision every scalable operator to the replica budget so a
    // future re-scale is a route swap, never graph surgery.
    let provision: Vec<usize> = topo
        .operators()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            if i == topo.source().0 || op.state.is_stateful() {
                initial[i]
            } else {
                cfg.controller.max_replicas.max(initial[i])
            }
        })
        .collect();
    let opts = CodegenOptions {
        items: cfg.items,
        seed: cfg.seed,
        provision,
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(topo, source_keys, &initial, &[], &opts)?;

    let info = Arc::new(PlanInfo {
        source: topo.source().0,
        input_actor: plan.input_actor.iter().map(|a| a.0).collect(),
        departure_actor: plan.departure_actor.iter().map(|a| a.0).collect(),
        slots: plan.replica_slots.clone(),
        emitter: plan.emitter_actor.clone(),
        partitioned: topo
            .operators()
            .iter()
            .map(|op| op.state.is_partitioned())
            .collect(),
    });

    // Initial key→slot maps, mirroring exactly what codegen deployed.
    let owners: Vec<Option<Vec<usize>>> = topo
        .operators()
        .iter()
        .enumerate()
        .map(|(i, op)| match &op.state {
            StateClass::PartitionedStateful { keys } if initial[i] > 1 => {
                Some(key_partitioning(keys, initial[i]).owner)
            }
            StateClass::PartitionedStateful { keys } => Some(vec![0; keys.frequencies().len()]),
            _ => None,
        })
        .collect();

    let mut graph = plan.graph;
    if !cfg.faults.is_empty() {
        let mut by_actor: HashMap<usize, OperatorFault> = HashMap::new();
        for f in &cfg.faults {
            let Some(op) = topo.operators().iter().position(|s| s.name == f.operator) else {
                return Err(HarnessError::Measurement {
                    reason: format!("fault targets unknown operator {:?}", f.operator),
                });
            };
            if info.slots[op].is_empty() {
                by_actor.insert(info.input_actor[op], f.clone());
            } else {
                for a in &info.slots[op] {
                    by_actor.insert(a.0, f.clone());
                }
            }
        }
        let seed = cfg.seed;
        graph.map_workers(|id, op| match by_actor.get(&id.0) {
            Some(f) => {
                let mut fault = FaultConfig::panics(
                    0.0,
                    seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                fault.crash_after_tuples = f.crash_after_tuples;
                if let Some((tuples, extra_ns)) = f.slow_after {
                    fault = fault.with_slowdown_after(tuples, extra_ns);
                }
                Box::new(FaultInjector::new(op, fault))
            }
            None => op,
        });
        graph.set_supervision_all(&SupervisorSpec::restart(u32::MAX, Backoff::none()));
    }

    // Optional sink tap (the oracle adaptation layer's evidence): wrap
    // every sink operator's deployed actors in a recording pass-through.
    // Applied after fault wrapping so a faulted sink's capture still sees
    // exactly the tuples the sink logically processed.
    let captured: Captured = Captured::default();
    if cfg.capture_sink {
        let sink_actors: HashSet<usize> = topo
            .operator_ids()
            .filter(|id| topo.out_edges(*id).is_empty())
            .flat_map(|id| {
                if info.slots[id.0].is_empty() {
                    vec![info.input_actor[id.0]]
                } else {
                    info.slots[id.0].iter().map(|a| a.0).collect()
                }
            })
            .collect();
        let store = Arc::clone(&captured);
        graph.map_workers(|id, op| {
            if sink_actors.contains(&id.0) {
                Box::new(CaptureTap {
                    inner: op,
                    store: Arc::clone(&store),
                })
            } else {
                op
            }
        });
    }

    let handle = ReconfigHandle::new();
    let engine = EngineConfig {
        seed: cfg.seed,
        batch_size: cfg.batch_size.max(1),
        checkpoint_interval: Some(cfg.checkpoint_interval),
        executor: match cfg.workers {
            Some(workers) => ExecutorKind::Pool { workers },
            None => ExecutorKind::ThreadPerActor,
        },
        reconfig: Some(handle.clone()),
        ..EngineConfig::default()
    };

    let state = Arc::new(Mutex::new(LoopState {
        controller: AdaptiveController::new(topo, initial.clone(), cfg.controller.clone()),
        history: VecDeque::new(),
        owners,
        next_handoff: 0,
        changes: Vec::new(),
        change_ticks: Vec::new(),
        swaps_posted: 0,
    }));

    let window = cfg.window_ticks.max(1);
    let hook_state = Arc::clone(&state);
    let hook_info = Arc::clone(&info);
    let hook_handle = handle.clone();
    let telemetry = TelemetryConfig::default()
        .with_interval(cfg.telemetry_interval)
        .with_on_snapshot(move |snap: &TelemetrySnapshot| {
            let mut st = hook_state.lock().unwrap_or_else(PoisonError::into_inner);
            st.history.push_back(cumulative_row(&hook_info, snap));
            while st.history.len() > window + 1 {
                st.history.pop_front();
            }
            if st.history.len() < 2 {
                return;
            }
            let oldest = st.history.front().expect("non-empty ring").clone();
            let newest = st.history.back().expect("non-empty ring").clone();
            let counters: Vec<OperatorCounters> = oldest
                .iter()
                .zip(&newest)
                .enumerate()
                .map(|(i, (o, w))| OperatorCounters {
                    items_in: w.0.saturating_sub(o.0),
                    items_out: w.1.saturating_sub(o.1),
                    busy_ns: (i != hook_info.source).then(|| w.2.saturating_sub(o.2)),
                })
                .collect();
            // Set SPINSTREAMS_ADAPTIVE_DEBUG=1 to trace the control loop's
            // inputs per tick (measured per-operator service times).
            if std::env::var_os("SPINSTREAMS_ADAPTIVE_DEBUG").is_some() {
                let svc: Vec<f64> = counters
                    .iter()
                    .map(|c| match c.busy_ns {
                        Some(b) if c.items_in > 0 => b as f64 / c.items_in as f64 / 1e3,
                        _ => 0.0,
                    })
                    .collect();
                eprintln!(
                    "tick {}: service us {:?}, items {:?}",
                    snap.tick,
                    svc,
                    counters.iter().map(|c| c.items_in).collect::<Vec<_>>()
                );
            }
            let Some(change) = st.controller.tick(&counters) else {
                return;
            };
            // Target the second barrier after the last completed epoch:
            // far enough out that every actor still meets it, and a late
            // post is still applied at the next alignment.
            let at_epoch = snap.last_complete_epoch.unwrap_or(0) + 2;
            let ops = translate_change(&mut st, &hook_info, &change, at_epoch);
            st.swaps_posted += ops.len() as u64;
            st.change_ticks.push(snap.tick);
            st.changes.push(change);
            if !ops.is_empty() {
                hook_handle.post(ops);
            }
        });

    let (run, telemetry) = run_with_telemetry(graph, &engine, &telemetry)?;

    // The sampler thread has joined; the hook can no longer fire. (The
    // telemetry config still holds a reference to the state Arc, so drain
    // through the mutex rather than unwrapping the Arc.)
    let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
    let st = LoopState {
        controller: st.controller.clone(),
        history: std::mem::take(&mut st.history),
        owners: std::mem::take(&mut st.owners),
        next_handoff: st.next_handoff,
        changes: std::mem::take(&mut st.changes),
        change_ticks: std::mem::take(&mut st.change_ticks),
        swaps_posted: st.swaps_posted,
    };

    let sink_arrival = |snap_actors: &dyn Fn(usize) -> u64| -> u64 {
        topo.sinks()
            .iter()
            .map(|s| snap_actors(info.input_actor[s.0]))
            .sum()
    };
    let sink_arrivals = sink_arrival(&|a| run.actor(ActorId(a)).items_in);

    // Post-migration tail: measured items/s from two ticks after the last
    // change to the end of the run.
    let post_change_throughput = st.change_ticks.last().and_then(|&tick| {
        let settled: Vec<&TelemetrySnapshot> = telemetry
            .snapshots
            .iter()
            .filter(|s| s.tick >= tick + 2)
            .collect();
        let (first, last) = (settled.first()?, settled.last()?);
        let dt = last.t_ns.saturating_sub(first.t_ns);
        if dt == 0 {
            return None;
        }
        let arrived = sink_arrival(&|a| last.actors[a].items_in)
            .saturating_sub(sink_arrival(&|a| first.actors[a].items_in));
        Some(arrived as f64 * 1e9 / dt as f64)
    });

    let sink_tuples = std::mem::take(&mut *captured.lock().unwrap_or_else(PoisonError::into_inner));

    Ok(AdaptiveOutcome {
        initial_replicas: initial,
        final_replicas: st.controller.current_replicas().to_vec(),
        ticks: st.controller.ticks(),
        rebases: st.controller.rebases(),
        changes: st.changes,
        change_ticks: st.change_ticks,
        swaps_posted: st.swaps_posted,
        swaps_applied: handle.applied(),
        handoffs_migrated: handle.migrated(),
        sink_arrivals,
        post_change_throughput,
        sink_tuples,
        run,
        telemetry,
    })
}

/// Plain-text rendering of an adaptive run, in the style of the other CLI
/// tables.
pub fn adaptive_table(path: &str, cfg: &AdaptiveRunConfig, outcome: &AdaptiveOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "adaptive run of {path}: {} items, {} ticks, drift threshold {:.2}, \
         cooldown {}, hysteresis {:.2}, replica budget {}",
        cfg.items,
        outcome.ticks,
        cfg.controller.drift.threshold,
        cfg.controller.cooldown_ticks,
        cfg.controller.hysteresis,
        cfg.controller.max_replicas,
    );
    let _ = writeln!(
        s,
        "plan: {:?} -> {:?} ({} change(s), {} rebase(s))",
        outcome.initial_replicas,
        outcome.final_replicas,
        outcome.changes.len(),
        outcome.rebases,
    );
    for (change, tick) in outcome.changes.iter().zip(&outcome.change_ticks) {
        let _ = writeln!(
            s,
            "  tick {tick}: {:?} -> {:?}, predicted {:.0} -> {:.0} items/s, stale: {}",
            change.old_replicas,
            change.replicas,
            change.old_predicted_throughput,
            change.predicted_throughput,
            change.stale.join(", "),
        );
    }
    let _ = writeln!(
        s,
        "migration: {} swap(s) posted, {} applied, {} key handoff(s) merged",
        outcome.swaps_posted, outcome.swaps_applied, outcome.handoffs_migrated,
    );
    let _ = writeln!(
        s,
        "sink arrivals: {} of {}",
        outcome.sink_arrivals, cfg.items
    );
    match (outcome.post_change_throughput, outcome.changes.last()) {
        (Some(measured), Some(change)) => {
            let _ = writeln!(
                s,
                "post-migration throughput: measured {measured:.0} vs predicted {:.0} items/s",
                change.predicted_throughput,
            );
        }
        (None, Some(_)) => {
            let _ = writeln!(
                s,
                "post-migration throughput: n/a (tail after the last change too short to measure)"
            );
        }
        _ => {
            let _ = writeln!(s, "post-migration throughput: n/a (no migration fired)");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_analysis::DriftConfig;
    use spinstreams_core::{OperatorSpec, ServiceTime};

    /// src -> worker -> sink, calibrated so the whole pipeline fits in
    /// well under one core (CI machines may have a single CPU): 4 k/s
    /// source, 50 us + 25 us of spin work per item. Keeping total CPU
    /// demand low keeps the engine's measured busy time close to the
    /// declared service times, so a clean run stays under the drift
    /// threshold; the fault injector makes the live worker ~7x slower
    /// mid-run, which is far over it.
    fn pipeline() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(250.0)).with_kind("source"),
        );
        let w = b.add_operator(
            OperatorSpec::stateless("worker", ServiceTime::from_micros(50.0))
                .with_kind("identity-map")
                .with_param("work_ns", 50_000.0),
        );
        let k = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(25.0))
                .with_kind("identity-map")
                .with_param("work_ns", 25_000.0),
        );
        b.add_edge(s, w, 1.0).unwrap();
        b.add_edge(w, k, 1.0).unwrap();
        b.build().unwrap()
    }

    fn config() -> AdaptiveRunConfig {
        AdaptiveRunConfig {
            items: 10_000,
            seed: 11,
            batch_size: 8,
            controller: AdaptiveConfig {
                drift: DriftConfig {
                    threshold: 0.5,
                    warmup_ticks: 2,
                    consecutive: 2,
                },
                cooldown_ticks: 3,
                hysteresis: 0.05,
                max_replicas: 6,
                min_samples: 100,
            },
            checkpoint_interval: 500,
            telemetry_interval: Duration::from_millis(20),
            ..AdaptiveRunConfig::default()
        }
    }

    #[test]
    fn clean_run_never_migrates_and_loses_nothing() {
        let topo = pipeline();
        let cfg = config();
        let outcome = run_adaptive(&topo, None, &cfg).unwrap();
        assert!(outcome.ticks > 0, "controller must tick");
        assert!(
            outcome.changes.is_empty(),
            "no drift, no migration; got {:?}",
            outcome
                .changes
                .iter()
                .map(|c| (c.stale.clone(), c.old_replicas.clone(), c.replicas.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(outcome.swaps_posted, 0);
        assert_eq!(outcome.final_replicas, outcome.initial_replicas);
        assert_eq!(outcome.sink_arrivals, cfg.items);
        assert_eq!(outcome.run.total_dead_letters(), 0);
    }

    #[test]
    fn sustained_slowdown_triggers_a_live_scale_out() {
        let topo = pipeline();
        let cfg = AdaptiveRunConfig {
            faults: vec![OperatorFault {
                operator: "worker".into(),
                slow_after: Some((2_000, 300_000)),
                ..OperatorFault::default()
            }],
            ..config()
        };
        let outcome = run_adaptive(&topo, None, &cfg).unwrap();
        assert!(
            !outcome.changes.is_empty(),
            "sustained drift must emit a plan change (ticks={}, rebases={})",
            outcome.ticks,
            outcome.rebases,
        );
        let worker_degree = outcome.final_replicas[1];
        assert!(
            worker_degree > 1,
            "worker must scale out, got {:?}",
            outcome.final_replicas
        );
        assert!(outcome.swaps_applied >= 1, "the swap must apply live");
        // Exactly-once across the migration: nothing lost, nothing
        // duplicated.
        assert_eq!(outcome.sink_arrivals, cfg.items);
        assert_eq!(outcome.run.total_dead_letters(), 0);
        let table = adaptive_table("pipeline", &cfg, &outcome);
        assert!(table.contains("swap(s) posted"), "table: {table}");
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let topo = pipeline();
        let cfg = AdaptiveRunConfig {
            checkpoint_interval: 0,
            ..config()
        };
        assert!(matches!(
            run_adaptive(&topo, None, &cfg),
            Err(HarnessError::Measurement { .. })
        ));
    }
}
