//! Calibration and predict-vs-measure drivers.

use spinstreams_analysis::{evaluate_with_replicas, steady_state, SteadyStateReport};
use spinstreams_codegen::{build_actor_graph, CodegenError, CodegenOptions, FusionGroup};
use spinstreams_core::{KeyDistribution, OperatorId, Selectivity, ServiceTime, Topology};
use spinstreams_runtime::{execute, EngineError, Executor, RunReport};
use std::fmt;

/// Errors from the harness pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// Code generation failed.
    Codegen(CodegenError),
    /// The runtime rejected or failed the actor graph.
    Engine(EngineError),
    /// The run produced unusable measurements (e.g. too few items).
    Measurement {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Codegen(e) => write!(f, "codegen: {e}"),
            HarnessError::Engine(e) => write!(f, "engine: {e}"),
            HarnessError::Measurement { reason } => write!(f, "measurement: {reason}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CodegenError> for HarnessError {
    fn from(e: CodegenError) -> Self {
        HarnessError::Codegen(e)
    }
}

impl From<EngineError> for HarnessError {
    fn from(e: EngineError) -> Self {
        HarnessError::Engine(e)
    }
}

/// Per-operator prediction-vs-measurement row (Figure 8's quantity).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorComparison {
    /// The operator.
    pub operator: OperatorId,
    /// Operator name.
    pub name: String,
    /// Model-predicted steady-state departure rate (items/s).
    pub predicted_departure: f64,
    /// Measured departure rate (items/s), if the operator departed at least
    /// twice.
    pub measured_departure: Option<f64>,
}

impl OperatorComparison {
    /// Relative prediction error `|pred - meas| / meas`, if measurable.
    pub fn relative_error(&self) -> Option<f64> {
        let m = self.measured_departure?;
        if m <= 0.0 {
            return None;
        }
        Some((self.predicted_departure - m).abs() / m)
    }
}

/// A full predict-vs-measure comparison for one deployment.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Model-predicted topology throughput (items/s).
    pub predicted_throughput: f64,
    /// Measured topology throughput (items/s).
    pub measured_throughput: f64,
    /// Per-operator rows, indexed by operator id.
    pub operators: Vec<OperatorComparison>,
    /// The model report backing the prediction.
    pub report: SteadyStateReport,
    /// The raw run metrics.
    pub run: RunReport,
}

impl Comparison {
    /// Relative throughput prediction error (Figure 7b's quantity).
    pub fn relative_error(&self) -> f64 {
        (self.predicted_throughput - self.measured_throughput).abs() / self.measured_throughput
    }

    /// Mean per-operator relative departure-rate error (Figure 8).
    pub fn mean_operator_error(&self) -> f64 {
        let errs: Vec<f64> = self
            .operators
            .iter()
            .filter_map(|o| o.relative_error())
            .collect();
        if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }
}

/// The executor configuration recommended for model-accuracy experiments:
/// virtual time (host-independent parallelism) with small mailboxes, so the
/// buffer-fill transient before backpressure engages is short relative to
/// the run (§5.2 attributes its outlier errors to exactly this kind of
/// not-yet-at-steady-state effect).
pub fn experiment_executor(seed: u64) -> Executor {
    Executor::VirtualTime(spinstreams_runtime::SimConfig {
        mailbox_capacity: 32,
        seed,
        ..spinstreams_runtime::SimConfig::default()
    })
}

/// The base RNG seed of an executor configuration.
fn executor_seed(executor: &Executor) -> u64 {
    match executor {
        Executor::Threads(c) => c.seed,
        Executor::VirtualTime(c) => c.seed,
    }
}

/// Number of items to generate so a run lasts roughly `secs` at the given
/// predicted throughput (bounded to keep degenerate predictions sane).
pub fn items_for_duration(predicted_throughput: f64, secs: f64) -> u64 {
    ((predicted_throughput * secs) as u64).clamp(2_000, 2_000_000)
}

/// Executes `topo` once and rewrites every operator's profiled service time
/// and selectivity from the measured metrics (the §4.1 profiling step).
///
/// * service time ← mean busy time per consumed item;
/// * selectivity ← identity input, measured `items_out / items_in` output
///   (an equivalent rate factor for the §3.4 model);
/// * the source's spec (generation rate) is left untouched.
///
/// Operators that consumed fewer than `min_samples` items keep their prior
/// annotations (low-probability paths may starve in a short calibration
/// run).
///
/// # Errors
///
/// Propagates codegen/engine failures.
pub fn calibrate(
    topo: &Topology,
    source_keys: Option<&KeyDistribution>,
    items: u64,
    min_samples: u64,
    executor: &Executor,
) -> Result<Topology, HarnessError> {
    let opts = CodegenOptions {
        items,
        seed: executor_seed(executor) ^ 0xCA11_B8A7,
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(topo, source_keys.cloned(), &[], &[], &opts)?;
    let report = execute(plan.graph, executor)?;

    let mut b = topo.to_builder();
    for id in topo.operator_ids() {
        if id == topo.source() {
            continue;
        }
        let actor = report.actor(plan.input_actor[id.0]);
        if actor.items_in < min_samples {
            continue;
        }
        let busy_per_item = actor.busy.as_secs_f64() / actor.items_in as f64;
        let out_ratio = actor.items_out as f64 / actor.items_in as f64;
        let spec = b.operator_mut(id);
        spec.service_time = ServiceTime::from_secs(busy_per_item);
        spec.selectivity = Selectivity::output(out_ratio.max(0.0));
    }
    b.build().map_err(|e| HarnessError::Measurement {
        reason: format!("calibrated topology failed validation: {e}"),
    })
}

/// Predicts the steady state of `topo` (optionally parallelized with
/// `replicas`) with the cost model, executes the corresponding deployment,
/// and returns both sides.
///
/// `fusions` are deployed as meta-operators; the model sees them through
/// the fused topology produced by the caller when comparing fusion
/// predictions (this function predicts on `topo` as given).
///
/// # Errors
///
/// Propagates codegen/engine failures; fails with
/// [`HarnessError::Measurement`] if the run produced no measurable source
/// throughput.
pub fn predict_vs_measure(
    topo: &Topology,
    source_keys: Option<&KeyDistribution>,
    replicas: &[usize],
    fusions: &[FusionGroup],
    items: u64,
    executor: &Executor,
) -> Result<Comparison, HarnessError> {
    let report = if replicas.is_empty() {
        steady_state(topo)
    } else {
        evaluate_with_replicas(topo, replicas)
    };

    let opts = CodegenOptions {
        items,
        seed: executor_seed(executor),
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(topo, source_keys.cloned(), replicas, fusions, &opts)?;
    let run_report = execute(plan.graph, executor)?;
    // The runtime source reports its *emission* rate; throughput is defined
    // as items ingested per second (§5.2), so divide the source's own
    // selectivity rate factor back out (identity for typical sources).
    let src_factor = topo
        .operator(topo.source())
        .selectivity
        .rate_factor()
        .max(f64::MIN_POSITIVE);
    let measured_throughput =
        run_report
            .source_throughput()
            .ok_or_else(|| HarnessError::Measurement {
                reason: "source produced fewer than two items".into(),
            })?
            / src_factor;

    let operators = topo
        .operator_ids()
        .map(|id| {
            let actor = run_report.actor(plan.departure_actor[id.0]);
            OperatorComparison {
                operator: id,
                name: topo.operator(id).name.clone(),
                predicted_departure: report.metric(id).departure,
                measured_departure: actor.departure_rate(),
            }
        })
        .collect();

    Ok(Comparison {
        predicted_throughput: report.throughput.items_per_sec(),
        measured_throughput,
        operators,
        report,
        run: run_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::OperatorSpec;

    fn engine() -> Executor {
        Executor::VirtualTime(spinstreams_runtime::SimConfig {
            mailbox_capacity: 32,
            seed: 0xC0FFEE,
            ..spinstreams_runtime::SimConfig::default()
        })
    }

    /// source (fast) -> spin-y arithmetic map (bottleneck) -> cheap sink.
    fn bottleneck_topology() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
        );
        let m = b.add_operator(
            OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
                .with_kind("identity-map")
                .with_param("work_ns", 400_000.0),
        );
        let k = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
                .with_kind("identity-map")
                .with_param("work_ns", 10_000.0),
        );
        b.add_edge(s, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn items_for_duration_clamps() {
        assert_eq!(items_for_duration(1e12, 5.0), 2_000_000);
        assert_eq!(items_for_duration(1.0, 0.1), 2_000);
        assert_eq!(items_for_duration(10_000.0, 2.0), 20_000);
    }

    #[test]
    fn calibration_updates_service_times() {
        let t = bottleneck_topology();
        let calibrated = calibrate(&t, None, 4_000, 100, &engine()).unwrap();
        // The 400 µs spin operator should be measured near 400 µs.
        let st = calibrated.operator(OperatorId(1)).service_time.as_micros();
        assert!(
            (st - 400.0).abs() / 400.0 < 0.3,
            "calibrated service time {st} µs"
        );
        // Identity maps keep output ratio 1.
        let sel = calibrated.operator(OperatorId(1)).selectivity;
        assert!((sel.rate_factor() - 1.0).abs() < 0.05);
        // Source untouched.
        assert_eq!(
            calibrated.operator(OperatorId(0)).service_time,
            t.operator(OperatorId(0)).service_time
        );
    }

    #[test]
    fn predict_vs_measure_tracks_backpressured_throughput() {
        let t = bottleneck_topology();
        let calibrated = calibrate(&t, None, 4_000, 100, &engine()).unwrap();
        let cmp = predict_vs_measure(&calibrated, None, &[], &[], 8_000, &engine()).unwrap();
        // The 400 µs stage caps throughput at 2500/s; in virtual time the
        // model and the measurement agree tightly.
        assert!(
            cmp.relative_error() < 0.05,
            "predicted {} measured {}",
            cmp.predicted_throughput,
            cmp.measured_throughput
        );
        assert!(cmp.predicted_throughput < 5_000.0);
        assert!(cmp.mean_operator_error() < 0.1);
        assert_eq!(cmp.operators.len(), 3);
    }

    #[test]
    fn predict_vs_measure_with_fission_restores_throughput() {
        let t = bottleneck_topology();
        let calibrated = calibrate(&t, None, 4_000, 100, &engine()).unwrap();
        let plan = spinstreams_analysis::eliminate_bottlenecks(&calibrated);
        assert!(plan.replicas[1] >= 2, "bottleneck must be replicated");
        let cmp =
            predict_vs_measure(&calibrated, None, &plan.replicas, &[], 12_000, &engine()).unwrap();
        // Parallelized: throughput should approach the source rate
        // (10k items/s) and the model should track it closely — virtual
        // time gives the replicas perfect parallelism on any host.
        assert!(
            cmp.measured_throughput > cmp.predicted_throughput * 0.9,
            "predicted {} measured {}",
            cmp.predicted_throughput,
            cmp.measured_throughput
        );
        assert!(cmp.relative_error() < 0.1);
    }

    #[test]
    fn harness_errors_are_displayable() {
        let e: HarnessError = CodegenError::BadReplicaVector { reason: "x".into() }.into();
        assert!(e.to_string().contains("codegen"));
        let e: HarnessError = EngineError::NoActors.into();
        assert!(e.to_string().contains("engine"));
    }
}
