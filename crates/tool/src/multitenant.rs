//! The differential oracle's **multi-tenant layer**: does the shared pool
//! preserve every tenant's output, and does the aggregate land where the
//! model says it should?
//!
//! (Like the adaptation layer, this lives in the tool crate — it drives
//! [`StreamService`], and `spinstreams-serve` is a dependency of this one;
//! it is surfaced through `spinstreams oracle --multitenant-seeds`.)
//!
//! One scenario per seed, `N + 1` runs:
//!
//! 1. **Solo** — each seeded paced pipeline is submitted to its own fresh
//!    service and launched alone. Its sink count is the reference output
//!    and its measured source throughput the solo baseline.
//! 2. **Concurrent** — all `N` pipelines are submitted to *one* service
//!    and launched together on the shared engine.
//!
//! The verdict requires:
//!
//! * **(a) admission** — every tenant must be admitted (the pipelines are
//!   paced well inside one core's worth of worker demand);
//! * **(b) isolation** — each tenant's concurrent sink count equals its
//!   solo sink count *exactly*: multiplexing on the shared pool must not
//!   lose, duplicate, or cross-deliver a single tuple;
//! * **(c) aggregate fidelity** — the summed measured source throughput of
//!   the concurrent run is within tolerance (symmetric relative error) of
//!   the summed Algorithm 1 predictions, i.e. co-scheduling costs at most
//!   the modeled overhead;
//! * **(d) plan-cache coherence** — resubmitting tenant 0's topology after
//!   the launch must hit the cache and return the byte-identical plan.

use crate::harness::HarnessError;
use spinstreams_analysis::steady_state;
use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
use spinstreams_runtime::{EngineConfig, ExecutorKind, TenantRun};
use spinstreams_serve::{ServeConfig, ServeError, StreamService, SubmitRequest, TenantState};
use std::fmt::Write as _;

/// Shape of one multi-tenant oracle scenario.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Concurrent tenants per seed.
    pub tenants: usize,
    /// Items each tenant's source generates per launch.
    pub items: u64,
    /// Envelope batch size of the shared engine.
    pub batch_size: usize,
    /// Pool workers (`Some(0)` = one per core); `None` runs
    /// thread-per-actor.
    pub workers: Option<usize>,
    /// Symmetric relative error allowed between the summed measured
    /// aggregate and the summed Algorithm 1 predictions.
    pub tolerance: f64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            tenants: 3,
            items: 1_200,
            batch_size: 8,
            workers: Some(1),
            tolerance: 0.25,
        }
    }
}

/// Per-tenant outcome of one multi-tenant scenario.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name (`t<idx>`).
    pub name: String,
    /// Algorithm 1 predicted throughput (items/s) of the tenant alone.
    pub predicted: f64,
    /// Measured solo source throughput (items/s), when measurable.
    pub solo_measured: Option<f64>,
    /// Measured concurrent source throughput (items/s), when measurable.
    pub concurrent_measured: Option<f64>,
    /// Sink tuples delivered by the solo run.
    pub solo_sink: u64,
    /// Sink tuples delivered by the concurrent run.
    pub concurrent_sink: u64,
    /// Worker-side core demand the admission model charged.
    pub demand_cores: f64,
}

/// The multi-tenant layer's verdict for one seed.
#[derive(Debug)]
pub struct MultiTenantReport {
    /// The scenario seed.
    pub seed: u64,
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantOutcome>,
    /// Summed measured concurrent source throughput (items/s).
    pub aggregate_measured: f64,
    /// Summed Algorithm 1 predictions (items/s).
    pub aggregate_predicted: f64,
    /// Plan-cache hits observed on the concurrent service.
    pub cache_hits: u64,
    /// Every violated invariant, human-readable. Empty = clean.
    pub divergences: Vec<String>,
}

impl MultiTenantReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn hash(seed: u64, salt: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The seeded paced pipeline for tenant `idx`: a source throttled to
/// 1.5–2.2 k items/s feeding one or two spin-calibrated `identity-map`
/// stages and a cheap terminal stage named `sink`. Every operator's
/// `work_ns` matches its declared service time, so Algorithm 1's
/// prediction *is* the ground truth the measured run is judged against,
/// and the whole pipeline's worker-side demand stays ≲ 0.15 cores —
/// several fit one shared core with margin.
pub fn tenant_topology(seed: u64, idx: usize) -> Topology {
    let h = hash(seed, 0x7E9A_9117 + idx as u64);
    let pace_us = 450.0 + (h % 200) as f64;
    let stages = 1 + ((h >> 8) % 2) as usize;
    let mut b = Topology::builder();
    let mut prev = b.add_operator(
        OperatorSpec::source(format!("src-{idx}"), ServiceTime::from_micros(pace_us))
            .with_kind("source"),
    );
    for s in 0..stages {
        let work_us = 20.0 + ((h >> (16 + 8 * s)) % 25) as f64;
        let op = b.add_operator(
            OperatorSpec::stateless(format!("work-{idx}-{s}"), ServiceTime::from_micros(work_us))
                .with_kind("identity-map")
                .with_param("work_ns", work_us * 1_000.0),
        );
        b.add_edge(prev, op, 1.0).expect("edge");
        prev = op;
    }
    let sink = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    b.add_edge(prev, sink, 1.0).expect("edge");
    b.build().expect("tenant topology")
}

/// A fresh serving front end for one scenario. Calibration is disabled
/// (the seeded annotations are trusted so Algorithm 1 is the oracle) and
/// fusion is off so the `sink` actor keeps its name in the run report.
fn scenario_service(cfg: &MultiTenantConfig) -> StreamService {
    let engine = EngineConfig {
        executor: match cfg.workers {
            Some(workers) => ExecutorKind::Pool { workers },
            None => ExecutorKind::ThreadPerActor,
        },
        batch_size: cfg.batch_size.max(1),
        ..EngineConfig::default()
    };
    let mut serve = ServeConfig::new(engine);
    serve.calibration_items = 0;
    serve.fuse = false;
    StreamService::new(serve)
}

fn serve_err(e: ServeError) -> HarnessError {
    match e {
        ServeError::Codegen(e) => HarnessError::Codegen(e),
        ServeError::Engine(e) => HarnessError::Engine(e),
        other => HarnessError::Measurement {
            reason: other.to_string(),
        },
    }
}

/// Sink tuples delivered in one tenant's run: `items_in` of the actor
/// backing the `sink` operator.
fn sink_count(run: &TenantRun) -> u64 {
    run.report
        .actors
        .iter()
        .filter(|a| a.name.contains("sink"))
        .map(|a| a.items_in)
        .sum()
}

fn symmetric_rel_error(predicted: f64, measured: f64) -> f64 {
    let denom = predicted.abs().max(measured.abs());
    if denom <= f64::MIN_POSITIVE {
        0.0
    } else {
        (predicted - measured).abs() / denom
    }
}

/// Runs the multi-tenant layer for one seed with the default scenario
/// shape. See the module docs for the invariants.
///
/// # Errors
///
/// Propagates codegen/engine failures from any run; the semantic checks
/// themselves are reported as divergences, not errors.
pub fn run_multitenant_layer(seed: u64) -> Result<MultiTenantReport, HarnessError> {
    run_multitenant_layer_with(seed, &MultiTenantConfig::default())
}

/// [`run_multitenant_layer`] with an explicit scenario shape.
///
/// # Errors
///
/// Propagates codegen/engine failures from any run.
pub fn run_multitenant_layer_with(
    seed: u64,
    cfg: &MultiTenantConfig,
) -> Result<MultiTenantReport, HarnessError> {
    let n = cfg.tenants.max(1);
    let topologies: Vec<Topology> = (0..n).map(|i| tenant_topology(seed, i)).collect();
    let predictions: Vec<f64> = topologies
        .iter()
        .map(|t| steady_state(t).throughput.items_per_sec())
        .collect();

    let mut divergences = Vec::new();

    // Solo baselines: each tenant alone on its own fresh service.
    let mut solo_runs = Vec::with_capacity(n);
    for (i, topo) in topologies.iter().enumerate() {
        let mut svc = scenario_service(cfg);
        let receipt = svc
            .submit(SubmitRequest::new(format!("t{i}"), topo.clone()).with_items(cfg.items))
            .map_err(serve_err)?;
        if receipt.state != TenantState::Admitted {
            divergences.push(format!(
                "solo tenant t{i} not admitted: {:?} ({:?})",
                receipt.state, receipt.verdict
            ));
            solo_runs.push(None);
            continue;
        }
        let mut runs = svc.launch().map_err(serve_err)?;
        if runs.len() != 1 {
            return Err(HarnessError::Measurement {
                reason: format!("solo launch of t{i} ran {} tenant(s)", runs.len()),
            });
        }
        solo_runs.push(Some(runs.remove(0)));
    }

    // The concurrent run: every tenant on one shared service.
    let mut svc = scenario_service(cfg);
    let mut demands = Vec::with_capacity(n);
    for (i, topo) in topologies.iter().enumerate() {
        let receipt = svc
            .submit(SubmitRequest::new(format!("t{i}"), topo.clone()).with_items(cfg.items))
            .map_err(serve_err)?;
        demands.push(receipt.verdict.demand_cores());
        // (a) every paced tenant must pass the admission model.
        if receipt.state != TenantState::Admitted {
            divergences.push(format!(
                "concurrent tenant t{i} not admitted: {:?} ({:?})",
                receipt.state, receipt.verdict
            ));
        }
    }
    let concurrent = svc.launch().map_err(serve_err)?;

    let mut tenants = Vec::with_capacity(n);
    let mut aggregate_measured = 0.0;
    for (i, solo) in solo_runs.iter().enumerate() {
        let name = format!("t{i}");
        let conc = concurrent.iter().find(|r| r.name == name);
        let solo_sink = solo.as_ref().map(sink_count).unwrap_or(0);
        let concurrent_sink = conc.map(sink_count).unwrap_or(0);
        // (b) exact per-tenant isolation on the shared pool.
        if solo_sink != concurrent_sink {
            divergences.push(format!(
                "tenant {name} sink counts diverge: solo {solo_sink} vs \
                 concurrent {concurrent_sink}",
            ));
        }
        if let Some(run) = conc {
            if run.report.total_dead_letters() != 0 {
                divergences.push(format!(
                    "tenant {name} dropped {} tuple(s) in the concurrent run",
                    run.report.total_dead_letters()
                ));
            }
        }
        let concurrent_measured = conc.and_then(|r| r.report.source_throughput());
        aggregate_measured += concurrent_measured.unwrap_or(0.0);
        tenants.push(TenantOutcome {
            name,
            predicted: predictions[i],
            solo_measured: solo.as_ref().and_then(|r| r.report.source_throughput()),
            concurrent_measured,
            solo_sink,
            concurrent_sink,
            demand_cores: demands.get(i).copied().unwrap_or(0.0),
        });
    }

    // (c) the aggregate lands within tolerance of the summed predictions.
    let aggregate_predicted: f64 = predictions.iter().sum();
    let err = symmetric_rel_error(aggregate_predicted, aggregate_measured);
    if err > cfg.tolerance {
        divergences.push(format!(
            "aggregate throughput off-model: measured {aggregate_measured:.0} vs \
             predicted {aggregate_predicted:.0} items/s (symmetric error {err:.2} > \
             tolerance {:.2})",
            cfg.tolerance,
        ));
    }

    // (d) the plan cache is coherent: the same topology resubmitted after
    // the launch must hit and reproduce the byte-identical plan.
    let before = svc.status().first().map(|t| t.plan_checksum);
    let warm = svc
        .submit(SubmitRequest::new("t0-warm", topologies[0].clone()).with_items(cfg.items))
        .map_err(serve_err)?;
    if !warm.cache_hit {
        divergences.push("resubmission of tenant t0's topology missed the plan cache".into());
    } else if before.is_some_and(|c| c != warm.plan_checksum) {
        divergences.push(format!(
            "cache hit returned a different plan: {:#018x} vs {:#018x}",
            before.unwrap_or(0),
            warm.plan_checksum,
        ));
    }

    Ok(MultiTenantReport {
        seed,
        tenants,
        aggregate_measured,
        aggregate_predicted,
        cache_hits: svc.cache_stats().hits,
        divergences,
    })
}

/// Renders one multi-tenant report as the oracle's plain-text verdict
/// block.
pub fn multitenant_table(report: &MultiTenantReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "multitenant seed {}: {} tenant(s), aggregate measured {:.0} vs \
         predicted {:.0} items/s (symmetric error {:.2}), {} cache hit(s)",
        report.seed,
        report.tenants.len(),
        report.aggregate_measured,
        report.aggregate_predicted,
        symmetric_rel_error(report.aggregate_predicted, report.aggregate_measured),
        report.cache_hits,
    );
    for t in &report.tenants {
        let fmt_rate = |r: Option<f64>| match r {
            Some(v) => format!("{v:.0}"),
            None => "n/a".into(),
        };
        let _ = writeln!(
            s,
            "  {}: sink solo {} vs concurrent {} | rate solo {} vs \
             concurrent {} (predicted {:.0}) | demand {:.3} cores",
            t.name,
            t.solo_sink,
            t.concurrent_sink,
            fmt_rate(t.solo_measured),
            fmt_rate(t.concurrent_measured),
            t.predicted,
            t.demand_cores,
        );
    }
    if report.is_clean() {
        let _ = writeln!(s, "  verdict: clean");
    } else {
        for d in &report.divergences {
            let _ = writeln!(s, "  DIVERGENT: {d}");
        }
    }
    s
}

// The layer's heavy coverage lives in `tests/serve.rs` (repo tier-1),
// which runs `run_multitenant_layer` on the CI seed; unit tests here stay
// cheap and structural.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_topologies_are_deterministic_and_paced() {
        let a = tenant_topology(3, 0);
        let b = tenant_topology(3, 0);
        assert_eq!(a.num_operators(), b.num_operators());
        assert!(a.num_operators() >= 3 && a.num_operators() <= 4);
        // The source is throttled: its declared rate is the pipeline
        // bottleneck and every stage stays under ρ = 1.
        let report = steady_state(&a);
        let rate = report.throughput.items_per_sec();
        assert!((1_400.0..2_300.0).contains(&rate), "rate = {rate}");
        let last = a.operators().last().expect("sink");
        assert_eq!(last.name, "sink");
    }

    #[test]
    fn different_tenants_get_different_pipelines() {
        let r0 = steady_state(&tenant_topology(3, 0))
            .throughput
            .items_per_sec();
        let r1 = steady_state(&tenant_topology(3, 1))
            .throughput
            .items_per_sec();
        assert_ne!(r0.to_bits(), r1.to_bits());
    }

    #[test]
    fn default_scenario_fits_one_core() {
        let cfg = MultiTenantConfig::default();
        let demand: f64 = (0..cfg.tenants)
            .map(|i| {
                let topo = tenant_topology(11, i);
                let report = steady_state(&topo);
                spinstreams_analysis::pool_demand_cores(&report, topo.source().index())
            })
            .sum();
        assert!(demand < 0.9, "worker-side demand {demand} ≥ usable core");
    }

    #[test]
    fn symmetric_error_is_symmetric() {
        assert!((symmetric_rel_error(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert!((symmetric_rel_error(50.0, 100.0) - 0.5).abs() < 1e-12);
        assert_eq!(symmetric_rel_error(0.0, 0.0), 0.0);
    }
}
