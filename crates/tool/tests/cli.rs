//! Smoke tests of the `spinstreams` command-line tool: every sub-command
//! runs against a temporary XML topology and produces the expected output.

use std::process::Command;

const TOPOLOGY: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<topology name="cli-test">
  <operator id="0" name="src" kind="source" type="stateless" service-time="100" time-unit="us"/>
  <operator id="1" name="stage-a" kind="identity-map" type="stateless" service-time="60" time-unit="us">
    <param name="work_ns" value="60000"/>
  </operator>
  <operator id="2" name="stage-b" kind="arithmetic-map" type="stateless" service-time="400" time-unit="us">
    <param name="work_ns" value="400000"/>
  </operator>
  <operator id="3" name="tail-a" kind="identity-map" type="stateless" service-time="30" time-unit="us">
    <param name="work_ns" value="30000"/>
  </operator>
  <operator id="4" name="tail-b" kind="projection" type="stateless" service-time="20" time-unit="us">
    <param name="keep" value="2"/>
    <param name="work_ns" value="20000"/>
  </operator>
  <edge from="0" to="1" probability="1.0"/>
  <edge from="1" to="2" probability="1.0"/>
  <edge from="2" to="3" probability="1.0"/>
  <edge from="3" to="4" probability="1.0"/>
</topology>
"#;

fn topology_file() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ss-cli-{}.xml", std::process::id()));
    std::fs::write(&path, TOPOLOGY).expect("write temp topology");
    path
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_spinstreams-cli"))
        .args(args)
        .output()
        .expect("spawn spinstreams CLI");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_reports_bottleneck() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["analyze", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("predicted throughput: 2500.00 items/s"));
    assert!(stdout.contains("bottlenecks detected at: stage-b"));
    assert!(stdout.contains("fusion candidates"));
}

#[test]
fn optimize_prints_fission_plan() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["optimize", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("all bottlenecks removed"));
    assert!(stdout.contains("predicted throughput: 10000.00 items/s"));
}

#[test]
fn fuse_underutilized_tail_is_feasible() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["fuse", path.to_str().unwrap(), "--members", "3,4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fusion is feasible"));
    assert!(stdout.contains("F(tail-a+tail-b)"));
}

#[test]
fn fuse_rejects_invalid_subgraph() {
    let path = topology_file();
    // {1, 3} is not connected with a single front end.
    let (_, stderr, ok) = run_cli(&["fuse", path.to_str().unwrap(), "--members", "1,3"]);
    assert!(!ok);
    assert!(stderr.contains("cannot fuse"));
}

#[test]
fn autofuse_merges_the_tail() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["autofuse", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("5 -> 4 operators") || stdout.contains("5 -> 3 operators"));
}

#[test]
fn codegen_emits_compilable_looking_source() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["codegen", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("fn main()"));
    assert!(stdout.contains("build_actor_graph"));
}

#[test]
fn dot_renders_graphviz() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["dot", path.to_str().unwrap(), "--optimized"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph topology {"));
    assert!(stdout.contains("×4 replicas"), "{stdout}");
}

#[test]
fn run_compares_model_and_measurement() {
    let path = topology_file();
    let (stdout, _, ok) = run_cli(&["run", path.to_str().unwrap(), "--items", "8000"]);
    assert!(ok);
    assert!(stdout.contains("predicted vs"));
    assert!(stdout.contains("measured items/s"));
}

#[test]
fn chaos_injects_faults_and_reports_supervision() {
    let path = topology_file();
    let (stdout, stderr, ok) = run_cli(&[
        "chaos",
        path.to_str().unwrap(),
        "--items",
        "3000",
        "--panic-prob",
        "0.05",
        "--seed",
        "11",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("panic probability 5.0%"), "{stdout}");
    assert!(stdout.contains("delivered fraction"), "{stdout}");
    // With 3000 items at 5% per worker, panics/restarts/dead letters are
    // all but certain; the report lists nonzero totals.
    assert!(!stdout.contains("totals: 0 panics"), "{stdout}");
    assert!(!stdout.contains("0 dead letters"), "{stdout}");
}

#[test]
fn chaos_rejects_bad_probability() {
    let path = topology_file();
    let (_, stderr, ok) = run_cli(&["chaos", path.to_str().unwrap(), "--panic-prob", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("--panic-prob"));
}

#[test]
fn bad_usage_and_bad_file_fail_cleanly() {
    let (_, stderr, ok) = run_cli(&["analyze"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
    let (_, stderr, ok) = run_cli(&["analyze", "/nonexistent.xml"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (_, stderr, ok) = run_cli(&["frobnicate", "/nonexistent.xml"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read") || stderr.contains("usage:"));
}

#[test]
fn run_with_telemetry_exports_jsonl_with_drift() {
    let path = topology_file();
    let out = std::env::temp_dir().join(format!("ss-cli-telemetry-{}.jsonl", std::process::id()));
    let (stdout, stderr, ok) = run_cli(&[
        "run",
        path.to_str().unwrap(),
        "--items",
        "6000",
        "--telemetry",
        out.to_str().unwrap(),
        "--interval-ms",
        "50",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("telemetry:"), "{stdout}");
    assert!(stdout.contains("drift:"), "{stdout}");
    let jsonl = std::fs::read_to_string(&out).expect("telemetry file");
    let _ = std::fs::remove_file(&out);
    let snapshots: Vec<&str> = jsonl
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"snapshot\""))
        .collect();
    assert!(!snapshots.is_empty(), "no snapshot records:\n{jsonl}");
    for line in &snapshots {
        assert!(
            line.contains("\"drift\":["),
            "snapshot without drift: {line}"
        );
        assert!(line.contains("\"departure_rate\":"));
        assert!(line.contains("\"latency\":["));
    }
    assert!(
        jsonl.lines().any(|l| l.starts_with("{\"type\":\"trace\"")),
        "no trace records"
    );
}

#[test]
fn chaos_with_telemetry_exports_fault_traces() {
    let path = topology_file();
    let out = std::env::temp_dir().join(format!(
        "ss-cli-chaos-telemetry-{}.jsonl",
        std::process::id()
    ));
    let (stdout, stderr, ok) = run_cli(&[
        "chaos",
        path.to_str().unwrap(),
        "--items",
        "3000",
        "--panic-prob",
        "0.05",
        "--seed",
        "11",
        "--telemetry",
        out.to_str().unwrap(),
        "--interval-ms",
        "20",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("telemetry:"), "{stdout}");
    let jsonl = std::fs::read_to_string(&out).expect("telemetry file");
    let _ = std::fs::remove_file(&out);
    assert!(jsonl
        .lines()
        .any(|l| l.starts_with("{\"type\":\"snapshot\"")));
    assert!(
        jsonl.contains("\"event\":\"operator-panicked\""),
        "fault traces missing:\n{}",
        jsonl.lines().rev().take(5).collect::<Vec<_>>().join("\n")
    );
    assert!(jsonl.contains("\"event\":\"operator-restarted\""));
}

#[test]
fn monitor_streams_jsonl_snapshots() {
    let path = topology_file();
    let (stdout, stderr, ok) = run_cli(&[
        "monitor",
        path.to_str().unwrap(),
        "--items",
        "3000",
        "--interval-ms",
        "50",
        "--format",
        "jsonl",
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"snapshot\""))
            .count()
            >= 1,
        "no live snapshots:\n{stdout}"
    );
    assert!(stdout.contains("run complete:"), "{stdout}");
}

#[test]
fn monitor_rejects_unknown_format() {
    let path = topology_file();
    let (_, stderr, ok) = run_cli(&["monitor", path.to_str().unwrap(), "--format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("--format"));
}
