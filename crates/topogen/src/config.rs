//! Generator configuration.

/// Parameters of the random testbed generator (paper defaults, with window
/// sizes scaled down so a full 50-topology sweep runs in minutes instead of
/// hours — see DESIGN.md §2 on the service-time scaling substitution).
#[derive(Debug, Clone)]
pub struct TopogenConfig {
    /// Minimum number of vertices (inclusive). Paper: 2.
    pub min_vertices: usize,
    /// Maximum number of vertices (inclusive). Paper: 20.
    pub max_vertices: usize,
    /// Connecting-factor range `β` (edges = `(V-1)·β`). Paper: `[1, 1.2]`.
    pub beta_range: (f64, f64),
    /// ZipF scaling-exponent range for edge probabilities (`α > 1`,
    /// "distributions with different skewness").
    pub zipf_alpha_range: (f64, f64),
    /// ZipF scaling-exponent range for key frequencies (kept mild so large
    /// key domains still balance across replicas, as in §5.3's testbed).
    pub key_zipf_alpha_range: (f64, f64),
    /// Candidate `(window, slide)` pairs for windowed operators. Paper:
    /// `{1000, 5000, 10000} × {1, 10, 50}`; scaled default:
    /// `{100, 300, 600} × {1, 5, 20}`.
    pub window_choices: Vec<(usize, usize)>,
    /// Range of calibrated extra work per item, ns (gives operators
    /// heterogeneous service times on top of their intrinsic cost).
    pub work_ns_range: (u64, u64),
    /// Number of distinct partitioning keys in the source stream.
    pub key_count_range: (usize, usize),
    /// The source's generation rate as a multiple of the fastest operator's
    /// service rate. Paper (§5.3): 1.33 — "33% higher than the service rate
    /// of the faster operator", guaranteeing bottlenecks exist.
    pub source_rate_factor: f64,
    /// Sample-stream length used when profiling each operator.
    pub profile_samples: usize,
    /// Warmup samples discarded by the profiler.
    pub profile_warmup: usize,
    /// Optional range for a non-identity *source* output selectivity: when
    /// set, each generated source draws an output rate factor uniformly
    /// from the range (a source can filter or expand what it ingests before
    /// emitting, §3.4). `None` (the default) keeps the identity-selectivity
    /// source of §5.3's testbed. Used by the differential oracle to
    /// exercise the source-selectivity code paths.
    pub source_selectivity_range: Option<(f64, f64)>,
}

impl Default for TopogenConfig {
    fn default() -> Self {
        TopogenConfig {
            min_vertices: 2,
            max_vertices: 20,
            beta_range: (1.0, 1.2),
            zipf_alpha_range: (1.1, 2.5),
            key_zipf_alpha_range: (0.3, 0.9),
            window_choices: vec![
                (100, 1),
                (100, 5),
                (300, 5),
                (300, 20),
                (600, 20),
                (600, 50),
            ],
            work_ns_range: (20_000, 400_000),
            key_count_range: (32, 128),
            source_rate_factor: 1.33,
            profile_samples: 600,
            profile_warmup: 150,
            source_selectivity_range: None,
        }
    }
}

impl TopogenConfig {
    /// A reduced configuration for fast unit tests: small graphs, light
    /// profiling.
    pub fn fast() -> Self {
        TopogenConfig {
            max_vertices: 8,
            window_choices: vec![(20, 1), (40, 5)],
            work_ns_range: (1_000, 20_000),
            profile_samples: 200,
            profile_warmup: 50,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_structure() {
        let c = TopogenConfig::default();
        assert_eq!(c.min_vertices, 2);
        assert_eq!(c.max_vertices, 20);
        assert_eq!(c.beta_range, (1.0, 1.2));
        assert!((c.source_rate_factor - 1.33).abs() < 1e-12);
        assert!(!c.window_choices.is_empty());
    }

    #[test]
    fn fast_config_is_smaller() {
        let c = TopogenConfig::fast();
        assert!(c.max_vertices <= 8);
        assert!(c.profile_samples <= 200);
    }
}
