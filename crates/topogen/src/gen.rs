//! Algorithm 5: random topology generation with operator assignment and
//! profiling.

use crate::TopogenConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spinstreams_core::{
    KeyDistribution, OperatorId, OperatorSpec, ServiceRate, Topology, Tuple, TUPLE_ARITY,
};
use spinstreams_operators::{build_operator, OperatorKind, OperatorParams};
use spinstreams_runtime::profile_operator;

/// A generated testbed topology.
#[derive(Debug, Clone)]
pub struct GeneratedTopology {
    /// The profiled, validated topology (source is operator 0; every spec
    /// carries its kind label and factory parameters).
    pub topology: Topology,
    /// The key-frequency distribution of the source stream (shared by the
    /// partitioned-stateful operators' state classes).
    pub source_keys: KeyDistribution,
    /// The seed that produced this topology.
    pub seed: u64,
}

impl GeneratedTopology {
    /// The source's generation rate.
    pub fn source_rate(&self) -> ServiceRate {
        self.topology
            .operator(self.topology.source())
            .service_rate()
    }
}

/// Generates one random testbed topology (Algorithm 5).
///
/// Structure, operator assignment and parameters are drawn from `rng`
/// deterministically given `seed`; every operator is then *profiled* over a
/// sample stream to obtain the service-time annotation of its
/// [`OperatorSpec`] — the measured inputs the cost models consume (§4.1).
///
/// The source's service rate is set `cfg.source_rate_factor` times the
/// fastest operator's rate (§5.3's "33% higher"), guaranteeing at least one
/// bottleneck exists.
pub fn generate(seed: u64, cfg: &TopogenConfig) -> GeneratedTopology {
    let mut rng = StdRng::seed_from_u64(seed);

    // -- Graph structure ---------------------------------------------------
    let v = rng.gen_range(cfg.min_vertices..=cfg.max_vertices);
    let beta = rng.gen_range(cfg.beta_range.0..=cfg.beta_range.1);
    let max_edges = v * (v - 1) / 2;
    let e_target = (((v - 1) as f64) * beta).round() as usize;
    let e_target = e_target.clamp(v.saturating_sub(1), max_edges);

    let mut edges: Vec<(usize, usize)> = Vec::new();
    let has_edge = |edges: &[(usize, usize)], u: usize, w: usize| {
        edges.iter().any(|(a, b)| *a == u && *b == w)
    };
    // Phase 1: V-1 random forward edges (i -> randInt(i+1, V-1)).
    for i in 0..v.saturating_sub(1) {
        let w = rng.gen_range(i + 1..v);
        if !has_edge(&edges, i, w) {
            edges.push((i, w));
        }
    }
    // Phase 2: top up to E with random forward pairs (bounded attempts so
    // degenerate small graphs cannot loop forever).
    let mut attempts = 0;
    while edges.len() < e_target && attempts < 50 * e_target.max(1) {
        attempts += 1;
        let u = rng.gen_range(0..v);
        let w = rng.gen_range(0..v);
        if u < w && !has_edge(&edges, u, w) {
            edges.push((u, w));
        }
    }
    // Phase 3: single source — connect vertex 0 to any input-less vertex.
    for i in 1..v {
        if !edges.iter().any(|(_, b)| *b == i) {
            edges.push((0, i));
        }
    }

    // -- Shared key distribution -------------------------------------------
    let key_count = rng.gen_range(cfg.key_count_range.0..=cfg.key_count_range.1);
    // Key-frequency skew is kept mild (§5.3: "an even distribution can be
    // achieved if the key domain is sufficiently large and the key
    // frequency distribution not so skewed" — the testbed's
    // partitioned-stateful operators were all successfully parallelized);
    // edge-probability skew below uses the full configured range instead.
    let key_alpha = rng.gen_range(cfg.key_zipf_alpha_range.0..=cfg.key_zipf_alpha_range.1);
    let source_keys = KeyDistribution::zipf(key_count, key_alpha);

    // -- Operator assignment (with constraints) ------------------------------
    let mut in_deg = vec![0usize; v];
    for (_, b) in &edges {
        in_deg[*b] += 1;
    }
    let stateless_kinds: Vec<OperatorKind> = OperatorKind::all()
        .iter()
        .copied()
        .filter(|k| k.is_stateless() && !k.requires_multi_input())
        .collect();
    let partitioned_kinds: Vec<OperatorKind> = OperatorKind::all()
        .iter()
        .copied()
        .filter(|k| k.is_partitioned() && !k.requires_multi_input())
        .collect();
    let stateful_kinds: Vec<OperatorKind> = OperatorKind::all()
        .iter()
        .copied()
        .filter(|k| !k.is_stateless() && !k.is_partitioned() && !k.requires_multi_input())
        .collect();
    let mut kinds: Vec<Option<OperatorKind>> = vec![None; v];
    let mut params: Vec<OperatorParams> = Vec::with_capacity(v);
    for i in 0..v {
        let kind = if i == 0 {
            None // the source
        } else if in_deg[i] >= 2 && rng.gen_bool(0.15) {
            // Most joins are key-partitionable equi joins; band joins (whose
            // matches cross keys and therefore cannot be replicated) are the
            // rare "stateful flag" cases of §5.3.
            if rng.gen_bool(0.25) {
                Some(OperatorKind::BandJoin)
            } else {
                Some(OperatorKind::EquiJoin)
            }
        } else {
            // Weighted class mix mirroring the paper's testbed outcome:
            // non-fissionable (stateful) operators are rare — §5.3 reports
            // only 7/50 topologies capped by them — so most vertices get
            // stateless or key-partitioned operators.
            let r = rng.gen_range(0.0..1.0);
            let pool = if r < 0.55 {
                &stateless_kinds
            } else if r < 0.98 {
                &partitioned_kinds
            } else {
                &stateful_kinds
            };
            Some(pool[rng.gen_range(0..pool.len())])
        };
        kinds[i] = kind;
        let (mut window, slide) = cfg.window_choices[rng.gen_range(0..cfg.window_choices.len())];
        if kind.is_some_and(|k| k.requires_multi_input()) {
            // Joins probe the opposite-side window on every input: a large
            // window with a skewed key distribution would give explosive
            // match rates (tens of outputs per input) and a selectivity
            // that keeps drifting while the window fills. Small join
            // windows keep the band/equi match rate O(1) and let it reach
            // its steady value within a few dozen items, like the paper's
            // band-join predicates.
            window = rng.gen_range(4..=8);
        }
        params.push(OperatorParams {
            work_ns: rng.gen_range(cfg.work_ns_range.0..=cfg.work_ns_range.1),
            window,
            slide,
            threshold: rng.gen_range(0.3..0.9),
            probability: rng.gen_range(0.3..0.9),
            fanout: rng.gen_range(2..=3),
            keep: rng.gen_range(1..=TUPLE_ARITY),
            num_keys: key_count as u64,
            k: rng.gen_range(3..=10).min(window),
            band: rng.gen_range(0.01..0.05),
            quantile: [0.5, 0.9, 0.95][rng.gen_range(0..3)],
            rounds: rng.gen_range(4..=32),
            epsilon: rng.gen_range(0.05..0.3),
        });
    }

    // -- Profiling ----------------------------------------------------------
    let sample = keyed_sample_stream(cfg.profile_samples, &source_keys, seed ^ 0xABCD_EF01);
    let mut specs: Vec<OperatorSpec> = Vec::with_capacity(v);
    let mut fastest_rate: f64 = 0.0;
    for i in 0..v {
        let spec = match kinds[i] {
            None => {
                // Placeholder; the source's service time is fixed below once
                // the fastest operator rate is known.
                OperatorSpec::source("source", spinstreams_core::ServiceTime::from_millis(1.0))
                    .with_kind("source")
            }
            Some(kind) => {
                let mut op = build_operator(kind, &params[i]);
                let prof = profile_operator(op.as_mut(), &sample, cfg.profile_warmup);
                let mut selectivity = kind.nominal_selectivity(&params[i]);
                if kind.requires_multi_input() {
                    // Join match rates are workload-dependent: use the
                    // measured output selectivity.
                    selectivity =
                        spinstreams_core::Selectivity::output(prof.output_selectivity.max(1e-3));
                }
                let rate = prof.mean_service_time.rate().items_per_sec();
                fastest_rate = fastest_rate.max(rate);
                let mut spec = OperatorSpec {
                    name: format!("op{}-{}", i, kind.label()),
                    service_time: prof.mean_service_time,
                    state: kind.state_class(&source_keys),
                    selectivity,
                    kind: kind.label().to_string(),
                    params: params[i].to_spec_params(),
                };
                spec.params
                    .insert("profiled_out_selectivity".into(), prof.output_selectivity);
                spec
            }
        };
        specs.push(spec);
    }
    // Source: `factor` times faster than the fastest operator (§5.3).
    let src_rate = fastest_rate * cfg.source_rate_factor;
    specs[0].service_time = ServiceRate::per_sec(src_rate).service_time();
    // Optional non-identity source selectivity (differential-oracle
    // scenarios); drawn only when requested so existing seeds reproduce
    // byte-identical topologies under the default configuration.
    if let Some((lo, hi)) = cfg.source_selectivity_range {
        let factor = rng.gen_range(lo..=hi);
        specs[0].selectivity = spinstreams_core::Selectivity::output(factor);
    }

    // -- Routing probabilities (ZipF over each multi-output vertex) ---------
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); v];
    for (idx, (a, _)) in edges.iter().enumerate() {
        out_edges[*a].push(idx);
    }
    let mut probs = vec![0.0f64; edges.len()];
    #[allow(clippy::needless_range_loop)] // vertex index selects its edge list
    for i in 0..v {
        let outs = &out_edges[i];
        match outs.len() {
            0 => {}
            1 => probs[outs[0]] = 1.0,
            d => {
                let alpha = rng.gen_range(cfg.zipf_alpha_range.0..=cfg.zipf_alpha_range.1);
                let dist = KeyDistribution::zipf(d, alpha);
                // Shuffle which edge gets which probability mass.
                let mut order: Vec<usize> = (0..d).collect();
                for j in (1..d).rev() {
                    order.swap(j, rng.gen_range(0..=j));
                }
                for (slot, &eidx) in order.iter().zip(outs.iter()) {
                    probs[eidx] = dist.frequency(*slot);
                }
            }
        }
    }

    // -- Build and validate --------------------------------------------------
    let mut b = Topology::builder();
    for spec in specs {
        b.add_operator(spec);
    }
    for (idx, (a, w)) in edges.iter().enumerate() {
        b.add_edge(OperatorId(*a), OperatorId(*w), probs[idx])
            .expect("generated edges are forward and unique");
    }
    let topology = b
        .build()
        .expect("Algorithm 5 output satisfies the constraints");

    GeneratedTopology {
        topology,
        source_keys,
        seed,
    }
}

/// A deterministic sample stream following a key distribution (profiling
/// input mirroring what the source will generate).
fn keyed_sample_stream(n: usize, keys: &KeyDistribution, seed: u64) -> Vec<Tuple> {
    let mut rng = spinstreams_runtime::XorShift64::new(seed);
    (0..n)
        .map(|i| {
            let key = keys.sample(rng.next_f64()) as u64;
            let mut values = [0.0f64; TUPLE_ARITY];
            for v in values.iter_mut() {
                *v = rng.next_f64();
            }
            Tuple::new(key, i as u64, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{is_topological_order, topological_order};

    #[test]
    fn generated_topologies_validate() {
        let cfg = TopogenConfig::fast();
        for seed in 0..20 {
            let g = generate(seed, &cfg);
            let t = &g.topology;
            assert!(t.num_operators() >= 2);
            assert!(t.num_operators() <= cfg.max_vertices);
            assert_eq!(t.source(), OperatorId(0));
            let order = topological_order(t);
            assert!(is_topological_order(t, &order));
        }
    }

    #[test]
    fn generation_is_structurally_deterministic() {
        // Profiled service times are wall-clock measurements and naturally
        // jitter; everything *drawn from the seed* must be identical.
        let cfg = TopogenConfig::fast();
        let a = generate(7, &cfg);
        let b = generate(7, &cfg);
        assert_eq!(a.topology.edges(), b.topology.edges());
        assert_eq!(a.source_keys, b.source_keys);
        for (x, y) in a.topology.operators().iter().zip(b.topology.operators()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.state, y.state);
            // All params except the profiled selectivity are seed-derived.
            for (k, v) in &x.params {
                if k != "profiled_out_selectivity" {
                    assert_eq!(y.params.get(k), Some(v), "param {k}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_vary_structure() {
        let cfg = TopogenConfig::fast();
        let sizes: std::collections::HashSet<usize> = (0..15)
            .map(|s| generate(s, &cfg).topology.num_operators())
            .collect();
        assert!(sizes.len() > 2, "sizes should vary: {sizes:?}");
    }

    #[test]
    fn source_rate_is_factor_above_fastest_operator() {
        let cfg = TopogenConfig::fast();
        for seed in [1, 5, 9] {
            let g = generate(seed, &cfg);
            let t = &g.topology;
            let fastest = t
                .operator_ids()
                .skip(1)
                .map(|id| t.operator(id).service_rate().items_per_sec())
                .fold(0.0, f64::max);
            let src = g.source_rate().items_per_sec();
            assert!(
                (src - fastest * cfg.source_rate_factor).abs() / src < 1e-6,
                "source {src} vs fastest {fastest}"
            );
        }
    }

    #[test]
    fn source_selectivity_range_draws_within_bounds() {
        let cfg = TopogenConfig {
            source_selectivity_range: Some((0.5, 1.5)),
            ..TopogenConfig::fast()
        };
        let mut non_identity = 0;
        for seed in 0..10 {
            let g = generate(seed, &cfg);
            let f = g
                .topology
                .operator(g.topology.source())
                .selectivity
                .rate_factor();
            assert!((0.5..=1.5).contains(&f), "seed {seed}: factor {f}");
            if (f - 1.0).abs() > 1e-9 {
                non_identity += 1;
            }
        }
        assert!(non_identity >= 8, "uniform draw rarely lands exactly on 1");
        // Default config keeps the identity source.
        let g = generate(3, &TopogenConfig::fast());
        let f = g
            .topology
            .operator(g.topology.source())
            .selectivity
            .rate_factor();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joins_only_on_multi_input_vertices() {
        let cfg = TopogenConfig::fast();
        for seed in 0..30 {
            let g = generate(seed, &cfg);
            let t = &g.topology;
            for id in t.operator_ids() {
                let spec = t.operator(id);
                if spec.kind == "band-join" || spec.kind == "equi-join" {
                    assert!(
                        t.in_edges(id).len() >= 2,
                        "seed {seed}: join on single-input vertex {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn specs_carry_kind_and_parameters() {
        let g = generate(3, &TopogenConfig::fast());
        for id in g.topology.operator_ids().skip(1) {
            let spec = g.topology.operator(id);
            assert!(!spec.kind.is_empty());
            assert!(spec.kind.parse::<OperatorKind>().is_ok());
            assert!(spec.params.contains_key("window"));
            assert!(spec.service_time.as_secs() > 0.0);
        }
    }

    #[test]
    fn edge_count_respects_beta_bound() {
        let cfg = TopogenConfig::default();
        for seed in 0..10 {
            let g = generate(
                seed,
                &TopogenConfig {
                    profile_samples: 150,
                    profile_warmup: 20,
                    ..cfg.clone()
                },
            );
            let t = &g.topology;
            let v = t.num_operators();
            // E ≤ (V-1)·β_max plus the single-source fix-up edges.
            let upper = ((v - 1) as f64 * 1.2).ceil() as usize + v;
            assert!(t.num_edges() <= upper);
            assert!(t.num_edges() >= v - 1);
        }
    }

    #[test]
    fn partitioned_operators_share_the_source_key_distribution() {
        let g = generate(11, &TopogenConfig::fast());
        for id in g.topology.operator_ids() {
            if let spinstreams_core::StateClass::PartitionedStateful { keys } =
                &g.topology.operator(id).state
            {
                assert_eq!(keys, &g.source_keys);
            }
        }
    }
}
