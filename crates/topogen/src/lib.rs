//! # spinstreams-topogen
//!
//! The random-topology testbed generator of §5.1 (Algorithm 5).
//!
//! Given a seed, [`generate`] produces one topology of the paper's testbed:
//!
//! 1. `V` vertices (uniform in a configurable range, paper: `[2, 20]`) and
//!    `E = (V-1)·β` expected edges with the connecting factor `β` uniform in
//!    `[1, 1.2]` — sparse graphs of loosely coupled operators;
//! 2. a random spanning structure respecting the topological ordering
//!    (`edge (i, j) ⇒ i < j`), extra random forward edges up to `E`, and
//!    source edges added to any vertex left without inputs;
//! 3. real-world operators assigned to vertices under structural
//!    constraints (joins only on vertices with ≥ 2 input edges) and
//!    randomized parameters (window lengths/slides, thresholds, extra work,
//!    ZipF key-frequency distributions for partitioned-stateful operators);
//! 4. ZipF-distributed routing probabilities on multi-output vertices
//!    (random scaling exponent — "distributions with different skewness");
//! 5. *profiling*: every assigned operator is run over a sample stream to
//!    measure its service time and output selectivity, which become the
//!    [`OperatorSpec`] inputs to the cost models — exactly the
//!    profile-driven workflow of §4.1.
//!
//! [`OperatorSpec`]: spinstreams_core::OperatorSpec

#![warn(missing_docs)]

mod config;
mod gen;

pub use config::TopogenConfig;
pub use gen::{generate, GeneratedTopology};
