//! The topology XML schema (§4.1).
//!
//! ```xml
//! <topology name="...">
//!   <operator id="0" name="source" kind="source" type="stateless"
//!             service-time="1.0" time-unit="ms">
//!     <selectivity input="1" output="1"/>
//!     <param name="window" value="100"/>
//!   </operator>
//!   <operator id="1" name="agg" kind="keyed-sum" type="partitioned-stateful" ...>
//!     <keys>
//!       <key frequency="0.5"/>
//!       ...
//!     </keys>
//!   </operator>
//!   <edge from="0" to="1" probability="1.0"/>
//! </topology>
//! ```

use crate::{parse, XmlError, XmlNode};
use spinstreams_core::{
    KeyDistribution, OperatorId, OperatorSpec, Selectivity, ServiceTime, StateClass, Topology,
    TopologyError,
};
use std::fmt;

/// Errors raised when interpreting a parsed document as a topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemaError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// An element or attribute required by the schema is missing or
    /// malformed.
    Invalid {
        /// Description of the problem.
        reason: String,
    },
    /// The described topology violates the structural constraints.
    Topology(TopologyError),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Xml(e) => write!(f, "{e}"),
            SchemaError::Invalid { reason } => write!(f, "invalid topology document: {reason}"),
            SchemaError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<XmlError> for SchemaError {
    fn from(e: XmlError) -> Self {
        SchemaError::Xml(e)
    }
}

impl From<TopologyError> for SchemaError {
    fn from(e: TopologyError) -> Self {
        SchemaError::Topology(e)
    }
}

fn invalid(reason: impl Into<String>) -> SchemaError {
    SchemaError::Invalid {
        reason: reason.into(),
    }
}

/// Adaptive re-optimization knobs carried on the `<settings>` element.
///
/// Present only when the document opts in with `adaptive="true"`; every
/// knob is optional and `None` defers to the controller's default:
///
/// ```xml
/// <settings adaptive="true" drift-threshold="0.25" adaptive-cooldown="4"
///           adaptive-hysteresis="0.05" adaptive-max-replicas="16"
///           adaptive-min-samples="200"/>
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveSettings {
    /// Relative-error threshold above which an annotation counts as
    /// drifting (`drift-threshold`, in `(0, +inf)`).
    pub drift_threshold: Option<f64>,
    /// Telemetry ticks to ignore after a migration or baseline rebase
    /// before re-arming the drift monitor (`adaptive-cooldown`).
    pub cooldown_ticks: Option<u64>,
    /// Minimum relative predicted-throughput gain a new plan must show
    /// before the controller migrates (`adaptive-hysteresis`, `>= 0`).
    pub hysteresis: Option<f64>,
    /// Total replica budget handed to Algorithm 2's bound
    /// (`adaptive-max-replicas`, positive).
    pub max_replicas: Option<usize>,
    /// Items an operator must have processed inside the profiling window
    /// before its re-profiled annotations are trusted
    /// (`adaptive-min-samples`).
    pub min_samples: Option<u64>,
}

/// Optional runtime tuning carried by a topology document in a
/// `<settings .../>` child of `<topology>`.
///
/// The element is additive: [`topology_from_xml`] ignores it entirely, so
/// documents with settings parse under older readers and documents without
/// it yield all-`None` settings.
///
/// ```xml
/// <topology name="...">
///   <settings batch-size="64" workers="4" checkpoint-interval="1000"
///             pin-cores="0,1,2,3"/>
///   ...
/// </topology>
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeSettings {
    /// Envelope batch size for the threaded engine's coalesced data path
    /// (`EngineConfig::batch_size`); `None` leaves the engine default.
    pub batch_size: Option<usize>,
    /// Pool-executor worker thread count (`EngineConfig::executor =
    /// Pool { workers }`); `0` means auto (available parallelism), `None`
    /// keeps the default thread-per-actor executor.
    pub workers: Option<usize>,
    /// Epoch-aligned checkpoint cadence in source items
    /// (`EngineConfig::checkpoint_interval`); `None` disables
    /// checkpointing (the default).
    pub checkpoint_interval: Option<u64>,
    /// Cores to pin engine threads onto, in stage order
    /// (`EngineConfig::pinning`); `None` leaves pinning off. Pinning is
    /// best-effort: on platforms without affinity support the engine warns
    /// once and runs unpinned.
    pub pin_cores: Option<Vec<usize>>,
    /// Adaptive re-optimization opt-in plus its knobs
    /// (`adaptive="true"` on `<settings>`); `None` keeps the closed-loop
    /// controller off.
    pub adaptive: Option<AdaptiveSettings>,
}

/// Extracts the optional [`RuntimeSettings`] from a topology document.
///
/// # Errors
///
/// [`SchemaError::Xml`] for malformed XML, [`SchemaError::Invalid`] when a
/// `<settings>` attribute is present but malformed (e.g. a non-numeric or
/// zero `batch-size`).
pub fn runtime_settings_from_xml(text: &str) -> Result<RuntimeSettings, SchemaError> {
    let root = parse(text)?;
    if root.name != "topology" {
        return Err(invalid(format!("root element is <{}>", root.name)));
    }
    let mut settings = RuntimeSettings::default();
    for node in root.children_named("settings") {
        if let Some(raw) = node.get_attr("batch-size") {
            let n = raw
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| invalid(format!("batch-size={raw:?} is not a positive integer")))?;
            settings.batch_size = Some(n);
        }
        if let Some(raw) = node.get_attr("workers") {
            // `workers="0"` is valid: it selects the pool executor with an
            // auto-resolved (available-parallelism) thread count.
            let n = raw
                .parse::<usize>()
                .map_err(|_| invalid(format!("workers={raw:?} is not a non-negative integer")))?;
            settings.workers = Some(n);
        }
        if let Some(raw) = node.get_attr("checkpoint-interval") {
            let n = raw.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                invalid(format!(
                    "checkpoint-interval={raw:?} is not a positive integer"
                ))
            })?;
            settings.checkpoint_interval = Some(n);
        }
        if let Some(raw) = node.get_attr("pin-cores") {
            // Same grammar as the CLI's --pin-cores: a non-empty
            // comma-separated list of distinct core ids.
            let mut cores = Vec::new();
            for part in raw.split(',') {
                let part = part.trim();
                let core = part
                    .parse::<usize>()
                    .map_err(|_| invalid(format!("pin-cores={raw:?}: bad core id {part:?}")))?;
                if cores.contains(&core) {
                    return Err(invalid(format!("pin-cores={raw:?}: core {core} repeated")));
                }
                cores.push(core);
            }
            if cores.is_empty() {
                return Err(invalid("pin-cores is empty".to_string()));
            }
            settings.pin_cores = Some(cores);
        }
        let enabled = match node.get_attr("adaptive") {
            None => false,
            Some("true") => true,
            Some("false") => false,
            Some(raw) => {
                return Err(invalid(format!(
                    "adaptive={raw:?} is not \"true\" or \"false\""
                )))
            }
        };
        let mut adaptive = AdaptiveSettings::default();
        let mut any_knob = false;
        if let Some(raw) = node.get_attr("drift-threshold") {
            let v = raw
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| {
                    invalid(format!("drift-threshold={raw:?} is not a positive number"))
                })?;
            adaptive.drift_threshold = Some(v);
            any_knob = true;
        }
        if let Some(raw) = node.get_attr("adaptive-cooldown") {
            let v = raw.parse::<u64>().map_err(|_| {
                invalid(format!(
                    "adaptive-cooldown={raw:?} is not a non-negative integer"
                ))
            })?;
            adaptive.cooldown_ticks = Some(v);
            any_knob = true;
        }
        if let Some(raw) = node.get_attr("adaptive-hysteresis") {
            let v = raw
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| {
                    invalid(format!(
                        "adaptive-hysteresis={raw:?} is not a non-negative number"
                    ))
                })?;
            adaptive.hysteresis = Some(v);
            any_knob = true;
        }
        if let Some(raw) = node.get_attr("adaptive-max-replicas") {
            let v = raw
                .parse::<usize>()
                .ok()
                .filter(|v| *v > 0)
                .ok_or_else(|| {
                    invalid(format!(
                        "adaptive-max-replicas={raw:?} is not a positive integer"
                    ))
                })?;
            adaptive.max_replicas = Some(v);
            any_knob = true;
        }
        if let Some(raw) = node.get_attr("adaptive-min-samples") {
            let v = raw.parse::<u64>().map_err(|_| {
                invalid(format!(
                    "adaptive-min-samples={raw:?} is not a non-negative integer"
                ))
            })?;
            adaptive.min_samples = Some(v);
            any_knob = true;
        }
        if enabled {
            settings.adaptive = Some(adaptive);
        } else if any_knob {
            // Knobs without the opt-in are almost certainly a typo'd
            // `adaptive="true"`; fail loudly instead of silently running
            // a static plan.
            return Err(invalid(
                "adaptive-* knobs present but adaptive=\"true\" is not set",
            ));
        }
    }
    Ok(settings)
}

/// Serializes a topology with explicit [`RuntimeSettings`]: the regular
/// [`topology_to_xml`] document plus a `<settings/>` element (omitted when
/// every setting is `None`, so the output stays byte-identical to the
/// plain serializer in that case).
pub fn topology_to_xml_with_settings(
    topo: &Topology,
    name: &str,
    settings: &RuntimeSettings,
) -> String {
    let mut attrs = String::new();
    if let Some(batch) = settings.batch_size {
        attrs.push_str(&format!(" batch-size=\"{batch}\""));
    }
    if let Some(workers) = settings.workers {
        attrs.push_str(&format!(" workers=\"{workers}\""));
    }
    if let Some(interval) = settings.checkpoint_interval {
        attrs.push_str(&format!(" checkpoint-interval=\"{interval}\""));
    }
    if let Some(cores) = &settings.pin_cores {
        let list = cores
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        attrs.push_str(&format!(" pin-cores=\"{list}\""));
    }
    if let Some(adaptive) = &settings.adaptive {
        attrs.push_str(" adaptive=\"true\"");
        if let Some(v) = adaptive.drift_threshold {
            attrs.push_str(&format!(" drift-threshold=\"{v}\""));
        }
        if let Some(v) = adaptive.cooldown_ticks {
            attrs.push_str(&format!(" adaptive-cooldown=\"{v}\""));
        }
        if let Some(v) = adaptive.hysteresis {
            attrs.push_str(&format!(" adaptive-hysteresis=\"{v}\""));
        }
        if let Some(v) = adaptive.max_replicas {
            attrs.push_str(&format!(" adaptive-max-replicas=\"{v}\""));
        }
        if let Some(v) = adaptive.min_samples {
            attrs.push_str(&format!(" adaptive-min-samples=\"{v}\""));
        }
    }
    if attrs.is_empty() {
        return topology_to_xml(topo, name);
    }
    let doc = topology_to_xml(topo, name);
    // Insert <settings/> right after the opening <topology ...> tag so the
    // document shape matches the schema example (the document begins with
    // an XML declaration, so search from the root element).
    let insert_at = doc
        .find("<topology")
        .and_then(|start| doc[start..].find('>').map(|off| start + off));
    match insert_at {
        Some(end) => format!("{}\n  <settings{attrs}/>{}", &doc[..=end], &doc[end + 1..]),
        None => doc,
    }
}

/// Serializes a full *scenario* — a topology plus the source stream's
/// key-frequency distribution — into one self-contained document.
///
/// The output is the regular [`topology_to_xml`] document with an extra
/// `<source-keys>` child holding one `<key frequency="…"/>` per key. The
/// element is additive: [`topology_from_xml`] ignores it, so scenario
/// documents still parse as plain topologies. The differential oracle uses
/// this to dump minimized counterexamples that reproduce byte-for-byte.
pub fn scenario_to_xml(
    topo: &Topology,
    name: &str,
    source_keys: Option<&KeyDistribution>,
) -> String {
    let Some(keys) = source_keys else {
        return topology_to_xml(topo, name);
    };
    let mut keys_node = XmlNode::new("source-keys");
    for f in keys.frequencies() {
        keys_node = keys_node.child(XmlNode::new("key").attr("frequency", format!("{f:e}")));
    }
    let doc = topology_to_xml(topo, name);
    // Insert after the opening <topology ...> tag, like the settings writer.
    let insert_at = doc
        .find("<topology")
        .and_then(|start| doc[start..].find('>').map(|off| start + off));
    match insert_at {
        Some(end) => {
            // Indent the fragment two spaces to match the document body.
            let fragment = keys_node
                .to_xml()
                .lines()
                .map(|l| format!("  {l}"))
                .collect::<Vec<_>>()
                .join("\n");
            format!("{}\n{fragment}{}", &doc[..=end], &doc[end + 1..])
        }
        None => doc,
    }
}

/// Parses a scenario document written by [`scenario_to_xml`]: the topology
/// plus the optional source key distribution (`None` when the document has
/// no `<source-keys>` element, i.e. it is a plain topology).
///
/// # Errors
///
/// As [`topology_from_xml`], plus [`SchemaError::Invalid`] for a malformed
/// `<source-keys>` distribution.
pub fn scenario_from_xml(text: &str) -> Result<(Topology, Option<KeyDistribution>), SchemaError> {
    let topo = topology_from_xml(text)?;
    let root = parse(text)?;
    let keys = match root.first_child("source-keys") {
        None => None,
        Some(node) => {
            let freqs: Result<Vec<f64>, SchemaError> = node
                .children_named("key")
                .map(|k| num_attr(k, "frequency"))
                .collect();
            Some(
                KeyDistribution::new(freqs?)
                    .ok_or_else(|| invalid("invalid source-keys frequency distribution"))?,
            )
        }
    };
    Ok((topo, keys))
}

/// Serializes a topology into the XML formalism.
///
/// Service times are written in microseconds (`time-unit="us"`); key
/// distributions and parameters are written in full, so the document
/// round-trips losslessly through [`topology_from_xml`].
pub fn topology_to_xml(topo: &Topology, name: &str) -> String {
    let mut root = XmlNode::new("topology").attr("name", name);
    for id in topo.operator_ids() {
        let op = topo.operator(id);
        let ty = match &op.state {
            StateClass::Stateless => "stateless",
            StateClass::PartitionedStateful { .. } => "partitioned-stateful",
            StateClass::Stateful => "stateful",
        };
        let mut node = XmlNode::new("operator")
            .attr("id", id.0)
            .attr("name", &op.name)
            .attr("type", ty)
            .attr("service-time", format!("{:e}", op.service_time.as_micros()))
            .attr("time-unit", "us");
        if !op.kind.is_empty() {
            node = node.attr("kind", &op.kind);
        }
        if !op.selectivity.is_identity() {
            node = node.child(
                XmlNode::new("selectivity")
                    .attr("input", format!("{:e}", op.selectivity.input))
                    .attr("output", format!("{:e}", op.selectivity.output)),
            );
        }
        if let StateClass::PartitionedStateful { keys } = &op.state {
            let mut keys_node = XmlNode::new("keys");
            for f in keys.frequencies() {
                keys_node =
                    keys_node.child(XmlNode::new("key").attr("frequency", format!("{f:e}")));
            }
            node = node.child(keys_node);
        }
        for (k, v) in &op.params {
            node = node.child(
                XmlNode::new("param")
                    .attr("name", k)
                    .attr("value", format!("{v:e}")),
            );
        }
        root = root.child(node);
    }
    for e in topo.edges() {
        root = root.child(
            XmlNode::new("edge")
                .attr("from", e.from.0)
                .attr("to", e.to.0)
                .attr("probability", format!("{:e}", e.probability)),
        );
    }
    root.to_xml_document()
}

fn req_attr<'a>(node: &'a XmlNode, key: &str) -> Result<&'a str, SchemaError> {
    node.get_attr(key)
        .ok_or_else(|| invalid(format!("<{}> missing attribute {key:?}", node.name)))
}

fn num_attr(node: &XmlNode, key: &str) -> Result<f64, SchemaError> {
    let raw = req_attr(node, key)?;
    raw.parse::<f64>()
        .map_err(|_| invalid(format!("attribute {key}={raw:?} is not a number")))
}

/// Parses a topology document produced by [`topology_to_xml`] (or written
/// by hand following the schema).
///
/// # Errors
///
/// [`SchemaError::Xml`] for malformed XML, [`SchemaError::Invalid`] for
/// schema violations, [`SchemaError::Topology`] if the described graph
/// fails the §3.1 structural validation.
pub fn topology_from_xml(text: &str) -> Result<Topology, SchemaError> {
    let root = parse(text)?;
    if root.name != "topology" {
        return Err(invalid(format!("root element is <{}>", root.name)));
    }
    let mut ops: Vec<(usize, OperatorSpec)> = Vec::new();
    for node in root.children_named("operator") {
        let id = num_attr(node, "id")? as usize;
        let name = req_attr(node, "name")?.to_string();
        let raw_time = num_attr(node, "service-time")?;
        let unit = node.get_attr("time-unit").unwrap_or("us");
        let service_time = match unit {
            "s" => ServiceTime::from_secs(raw_time),
            "ms" => ServiceTime::from_millis(raw_time),
            "us" => ServiceTime::from_micros(raw_time),
            "ns" => ServiceTime::from_micros(raw_time / 1e3),
            other => return Err(invalid(format!("unknown time-unit {other:?}"))),
        };
        let ty = req_attr(node, "type")?;
        let state = match ty {
            "stateless" => StateClass::Stateless,
            "stateful" => StateClass::Stateful,
            "partitioned-stateful" => {
                let keys_node = node
                    .first_child("keys")
                    .ok_or_else(|| invalid("partitioned-stateful operator without <keys>"))?;
                let freqs: Result<Vec<f64>, SchemaError> = keys_node
                    .children_named("key")
                    .map(|k| num_attr(k, "frequency"))
                    .collect();
                let keys = KeyDistribution::new(freqs?)
                    .ok_or_else(|| invalid("invalid key frequency distribution"))?;
                StateClass::PartitionedStateful { keys }
            }
            other => return Err(invalid(format!("unknown operator type {other:?}"))),
        };
        let mut spec = OperatorSpec {
            name,
            service_time,
            state,
            selectivity: Selectivity::ONE,
            kind: node.get_attr("kind").unwrap_or("").to_string(),
            params: Default::default(),
        };
        if let Some(sel) = node.first_child("selectivity") {
            spec.selectivity = Selectivity {
                input: num_attr(sel, "input")?,
                output: num_attr(sel, "output")?,
            };
        }
        for p in node.children_named("param") {
            spec.params
                .insert(req_attr(p, "name")?.to_string(), num_attr(p, "value")?);
        }
        ops.push((id, spec));
    }
    ops.sort_by_key(|(id, _)| *id);
    for (expect, (id, _)) in ops.iter().enumerate() {
        if *id != expect {
            return Err(invalid(format!(
                "operator ids must be dense, missing id {expect}"
            )));
        }
    }

    let mut b = Topology::builder();
    for (_, spec) in ops {
        b.add_operator(spec);
    }
    for node in root.children_named("edge") {
        let from = num_attr(node, "from")? as usize;
        let to = num_attr(node, "to")? as usize;
        let p = num_attr(node, "probability")?;
        b.add_edge(OperatorId(from), OperatorId(to), p)?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_millis(0.5)).with_kind("source"),
        );
        let f = b.add_operator(
            OperatorSpec::stateless("filter", ServiceTime::from_micros(80.0))
                .with_kind("filter")
                .with_selectivity(Selectivity::output(0.4))
                .with_param("threshold", 0.4),
        );
        let a = b.add_operator(
            OperatorSpec::partitioned(
                "agg",
                ServiceTime::from_micros(120.0),
                KeyDistribution::zipf(8, 1.3),
            )
            .with_kind("keyed-sum")
            .with_selectivity(Selectivity::input(10.0))
            .with_param("window", 100.0)
            .with_param("slide", 10.0),
        );
        let k = b.add_operator(OperatorSpec::stateful(
            "join",
            ServiceTime::from_micros(200.0),
        ));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, a, 0.7).unwrap();
        b.add_edge(f, k, 0.3).unwrap();
        b.add_edge(a, k, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn scenario_roundtrip_preserves_topology_and_keys() {
        let t = sample();
        let keys = KeyDistribution::zipf(12, 0.8);
        let xml = scenario_to_xml(&t, "scen", Some(&keys));
        let (back, back_keys) = scenario_from_xml(&xml).unwrap();
        assert_eq!(t, back);
        assert_eq!(back_keys.as_ref(), Some(&keys));
        // The scenario document still parses as a plain topology.
        assert_eq!(topology_from_xml(&xml).unwrap(), t);
        // Without keys the document is byte-identical to the plain writer.
        assert_eq!(
            scenario_to_xml(&t, "scen", None),
            topology_to_xml(&t, "scen")
        );
        let (_, none_keys) = scenario_from_xml(&topology_to_xml(&t, "scen")).unwrap();
        assert!(none_keys.is_none());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let xml = topology_to_xml(&t, "sample");
        let back = topology_from_xml(&xml).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn document_contains_schema_elements() {
        let xml = topology_to_xml(&sample(), "sample");
        assert!(xml.contains("<topology name=\"sample\">"));
        assert!(xml.contains("type=\"partitioned-stateful\""));
        assert!(xml.contains("<keys>"));
        assert!(xml.contains("<selectivity"));
        assert!(xml.contains("<param name=\"slide\""));
        assert!(xml.contains("probability=\"7e-1\""));
    }

    #[test]
    fn parses_hand_written_document_with_units() {
        let doc = r#"
            <topology name="hand">
              <operator id="0" name="src" type="stateless" service-time="1" time-unit="ms"/>
              <operator id="1" name="sink" type="stateless" service-time="0.0005" time-unit="s"/>
              <edge from="0" to="1" probability="1.0"/>
            </topology>"#;
        let t = topology_from_xml(doc).unwrap();
        assert_eq!(t.num_operators(), 2);
        assert!((t.operator(OperatorId(0)).service_time.as_millis() - 1.0).abs() < 1e-12);
        assert!((t.operator(OperatorId(1)).service_time.as_micros() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn schema_errors() {
        // Root element wrong.
        assert!(matches!(
            topology_from_xml("<nope/>").unwrap_err(),
            SchemaError::Invalid { .. }
        ));
        // Missing required attribute.
        let doc = r#"<topology><operator id="0" type="stateless" service-time="1"/></topology>"#;
        assert!(matches!(
            topology_from_xml(doc).unwrap_err(),
            SchemaError::Invalid { .. }
        ));
        // Bad number.
        let doc = r#"<topology><operator id="0" name="a" type="stateless" service-time="xx"/></topology>"#;
        assert!(topology_from_xml(doc).is_err());
        // Unknown type.
        let doc =
            r#"<topology><operator id="0" name="a" type="weird" service-time="1"/></topology>"#;
        assert!(matches!(
            topology_from_xml(doc).unwrap_err(),
            SchemaError::Invalid { .. }
        ));
        // Sparse ids.
        let doc = r#"<topology>
            <operator id="0" name="a" type="stateless" service-time="1"/>
            <operator id="2" name="b" type="stateless" service-time="1"/>
        </topology>"#;
        assert!(matches!(
            topology_from_xml(doc).unwrap_err(),
            SchemaError::Invalid { .. }
        ));
        // Partitioned without keys.
        let doc = r#"<topology><operator id="0" name="a" type="partitioned-stateful" service-time="1"/></topology>"#;
        assert!(matches!(
            topology_from_xml(doc).unwrap_err(),
            SchemaError::Invalid { .. }
        ));
        // Structural violation (cycle) surfaces as Topology error.
        let doc = r#"<topology>
            <operator id="0" name="a" type="stateless" service-time="1"/>
            <operator id="1" name="b" type="stateless" service-time="1"/>
            <operator id="2" name="c" type="stateless" service-time="1"/>
            <edge from="0" to="1" probability="1.0"/>
            <edge from="1" to="2" probability="1.0"/>
            <edge from="2" to="1" probability="1.0"/>
        </topology>"#;
        assert!(matches!(
            topology_from_xml(doc).unwrap_err(),
            SchemaError::Topology(_)
        ));
        // Malformed XML surfaces as Xml error.
        assert!(matches!(
            topology_from_xml("<topology>").unwrap_err(),
            SchemaError::Xml(_)
        ));
    }

    #[test]
    fn settings_roundtrip_and_are_ignored_by_topology_parse() {
        let t = sample();
        let settings = RuntimeSettings {
            batch_size: Some(64),
            workers: Some(4),
            checkpoint_interval: Some(1_000),
            pin_cores: Some(vec![0, 2, 1]),
            adaptive: None,
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &settings);
        assert!(xml.contains(
            "<settings batch-size=\"64\" workers=\"4\" checkpoint-interval=\"1000\" \
             pin-cores=\"0,2,1\"/>"
        ));
        // The settings element is invisible to the topology parser...
        let back = topology_from_xml(&xml).unwrap();
        assert_eq!(t, back);
        // ...and round-trips through the settings parser.
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), settings);
        // Each attribute also stands alone.
        let batch_only = RuntimeSettings {
            batch_size: Some(8),
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &batch_only);
        assert!(xml.contains("<settings batch-size=\"8\"/>"));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), batch_only);
        let workers_only = RuntimeSettings {
            workers: Some(0), // 0 = auto-resolved pool
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &workers_only);
        assert!(xml.contains("<settings workers=\"0\"/>"));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), workers_only);
        let checkpoint_only = RuntimeSettings {
            checkpoint_interval: Some(500),
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &checkpoint_only);
        assert!(xml.contains("<settings checkpoint-interval=\"500\"/>"));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), checkpoint_only);
        let pin_only = RuntimeSettings {
            pin_cores: Some(vec![3]),
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &pin_only);
        assert!(xml.contains("<settings pin-cores=\"3\"/>"));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), pin_only);
        // No settings: serializer emits the plain document, parser yields
        // defaults.
        let plain = topology_to_xml_with_settings(&t, "sample", &RuntimeSettings::default());
        assert_eq!(plain, topology_to_xml(&t, "sample"));
        assert_eq!(
            runtime_settings_from_xml(&plain).unwrap(),
            RuntimeSettings::default()
        );
    }

    #[test]
    fn adaptive_settings_roundtrip() {
        let t = sample();
        // Full knob set round-trips.
        let settings = RuntimeSettings {
            checkpoint_interval: Some(500),
            adaptive: Some(AdaptiveSettings {
                drift_threshold: Some(0.25),
                cooldown_ticks: Some(4),
                hysteresis: Some(0.05),
                max_replicas: Some(16),
                min_samples: Some(200),
            }),
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &settings);
        assert!(xml.contains(
            "adaptive=\"true\" drift-threshold=\"0.25\" adaptive-cooldown=\"4\" \
             adaptive-hysteresis=\"0.05\" adaptive-max-replicas=\"16\" \
             adaptive-min-samples=\"200\""
        ));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), settings);
        // Bare opt-in: all knobs default.
        let bare = RuntimeSettings {
            adaptive: Some(AdaptiveSettings::default()),
            ..RuntimeSettings::default()
        };
        let xml = topology_to_xml_with_settings(&t, "sample", &bare);
        assert!(xml.contains("<settings adaptive=\"true\"/>"));
        assert_eq!(runtime_settings_from_xml(&xml).unwrap(), bare);
        // Explicit opt-out parses as no adaptive settings.
        let doc = r#"<topology name="t">
             <settings adaptive="false"/>
             <operator id="0" name="src" type="stateless" service-time="1"/>
           </topology>"#;
        assert_eq!(runtime_settings_from_xml(doc).unwrap().adaptive, None);
    }

    #[test]
    fn malformed_adaptive_settings_are_rejected() {
        let wrap = |attrs: &str| {
            format!(
                r#"<topology name="t">
                     <settings {attrs}/>
                     <operator id="0" name="src" type="stateless" service-time="1"/>
                   </topology>"#
            )
        };
        for attrs in [
            "adaptive=\"yes\"",
            "adaptive=\"true\" drift-threshold=\"0\"",
            "adaptive=\"true\" drift-threshold=\"nan\"",
            "adaptive=\"true\" adaptive-hysteresis=\"-0.1\"",
            "adaptive=\"true\" adaptive-max-replicas=\"0\"",
            "adaptive=\"true\" adaptive-cooldown=\"-1\"",
            "adaptive=\"true\" adaptive-min-samples=\"abc\"",
            // Knobs without the opt-in are a configuration error.
            "drift-threshold=\"0.5\"",
        ] {
            assert!(
                matches!(
                    runtime_settings_from_xml(&wrap(attrs)).unwrap_err(),
                    SchemaError::Invalid { .. }
                ),
                "expected rejection for {attrs}"
            );
        }
    }

    #[test]
    fn malformed_settings_are_rejected() {
        for bad in ["0", "-3", "abc"] {
            let doc = format!(
                r#"<topology name="t">
                     <settings batch-size="{bad}"/>
                     <operator id="0" name="src" type="stateless" service-time="1"/>
                   </topology>"#
            );
            assert!(
                matches!(
                    runtime_settings_from_xml(&doc).unwrap_err(),
                    SchemaError::Invalid { .. }
                ),
                "batch-size {bad:?} must be rejected"
            );
            // The topology itself still parses: settings stay additive.
            assert!(topology_from_xml(&doc).is_ok());
        }
        // workers accepts 0 (auto) but rejects non-integers.
        for bad in ["-1", "four", "2.5"] {
            let doc = format!(
                r#"<topology name="t">
                     <settings workers="{bad}"/>
                     <operator id="0" name="src" type="stateless" service-time="1"/>
                   </topology>"#
            );
            assert!(
                matches!(
                    runtime_settings_from_xml(&doc).unwrap_err(),
                    SchemaError::Invalid { .. }
                ),
                "workers {bad:?} must be rejected"
            );
        }
        // pin-cores must be a non-empty list of distinct core ids.
        for bad in ["", "a,b", "1,1", "-1", "0,"] {
            let doc = format!(
                r#"<topology name="t">
                     <settings pin-cores="{bad}"/>
                     <operator id="0" name="src" type="stateless" service-time="1"/>
                   </topology>"#
            );
            assert!(
                matches!(
                    runtime_settings_from_xml(&doc).unwrap_err(),
                    SchemaError::Invalid { .. }
                ),
                "pin-cores {bad:?} must be rejected"
            );
        }
        // checkpoint-interval must be a positive integer (off = omit it).
        for bad in ["0", "-2", "many"] {
            let doc = format!(
                r#"<topology name="t">
                     <settings checkpoint-interval="{bad}"/>
                     <operator id="0" name="src" type="stateless" service-time="1"/>
                   </topology>"#
            );
            assert!(
                matches!(
                    runtime_settings_from_xml(&doc).unwrap_err(),
                    SchemaError::Invalid { .. }
                ),
                "checkpoint-interval {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn error_display_variants() {
        let e = SchemaError::Invalid {
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        let e: SchemaError = TopologyError::Cyclic.into();
        assert!(e.to_string().contains("cycle"));
    }
}
