//! A minimal well-formed-XML parser.
//!
//! Supports the subset needed by the topology schema: nested elements,
//! double- or single-quoted attributes, self-closing tags, comments,
//! an optional `<?xml …?>` declaration, character data, and the five
//! predefined entities. No namespaces, DTDs, CDATA or processing
//! instructions beyond the declaration.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes, sorted by name.
    pub attrs: BTreeMap<String, String>,
    /// Child elements, in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated character data directly inside this element
    /// (whitespace-trimmed).
    pub text: String,
}

impl XmlNode {
    /// Creates an element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.attrs.insert(key.into(), value.to_string());
        self
    }

    /// Appends a child element (builder style).
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Returns the attribute value, if present.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Returns all children with the given element name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Returns the first child with the given name.
    pub fn first_child<'a>(&'a self, name: &str) -> Option<&'a XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Parse errors with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(i) => self.pos += i + 2,
                    None => return self.err("unterminated declaration"),
                }
            } else if self.starts_with("<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => return self.err("unterminated comment"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'-' | b'_' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("expected a quoted attribute value"),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return unescape(&raw).map_err(|m| XmlError {
                    offset: start,
                    message: m,
                });
            }
            self.pos += 1;
        }
        self.err("unterminated attribute value")
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return self.err("expected '<'");
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return self.err("expected '>' after '/'");
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return self.err("expected '=' in attribute");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.quoted()?;
                    if node.attrs.insert(key.clone(), value).is_some() {
                        return self.err(format!("duplicate attribute {key:?}"));
                    }
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // Content.
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return self.err(format!("mismatched close tag: {name:?} vs {close:?}"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.err("expected '>' in close tag");
                }
                self.pos += 1;
                node.text = text.trim().to_string();
                return Ok(node);
            }
            match self.peek() {
                Some(b'<') => node.children.push(self.element()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    text.push_str(&unescape(&raw).map_err(|m| XmlError {
                        offset: start,
                        message: m,
                    })?);
                }
                None => return self.err(format!("unterminated element {name:?}")),
            }
        }
    }
}

/// Parses a document into its root element.
///
/// # Errors
///
/// Returns an [`XmlError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return p.err("trailing content after root element");
    }
    Ok(root)
}

/// Decodes the five predefined entities.
fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity".to_string())?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(format!("unknown entity {other:?}")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Encodes the five predefined entities (used by the writer).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_element() {
        let n = parse("<a/>").unwrap();
        assert_eq!(n.name, "a");
        assert!(n.attrs.is_empty());
        assert!(n.children.is_empty());
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let n = parse(r#"<op name="map" rate='5.5'/>"#).unwrap();
        assert_eq!(n.get_attr("name"), Some("map"));
        assert_eq!(n.get_attr("rate"), Some("5.5"));
        assert_eq!(n.get_attr("missing"), None);
    }

    #[test]
    fn parses_nested_children_and_text() {
        let n = parse("<a><b x=\"1\"/><c>hello</c><b x=\"2\"/></a>").unwrap();
        assert_eq!(n.children.len(), 3);
        assert_eq!(n.children_named("b").count(), 2);
        assert_eq!(n.first_child("c").unwrap().text, "hello");
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- top --><a><!-- inner --><b/></a><!-- tail -->";
        let n = parse(doc).unwrap();
        assert_eq!(n.name, "a");
        assert_eq!(n.children.len(), 1);
    }

    #[test]
    fn entities_roundtrip() {
        let n = parse(r#"<a t="&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;"/>"#).unwrap();
        assert_eq!(n.get_attr("t"), Some("<x> & \"y\" 'z'"));
        let written = XmlNode::new("a").attr("t", "<x> & \"y\" 'z'").to_xml();
        let back = parse(&written).unwrap();
        assert_eq!(back.get_attr("t"), Some("<x> & \"y\" 'z'"));
    }

    #[test]
    fn error_cases_report_offsets() {
        for (doc, needle) in [
            ("<a>", "unterminated element"),
            ("<a></b>", "mismatched close tag"),
            ("<a x=1/>", "quoted attribute"),
            ("<a x=\"1\" x=\"2\"/>", "duplicate attribute"),
            ("<a/><b/>", "trailing content"),
            ("<a t=\"&bad;\"/>", "unknown entity"),
            ("<", "expected a name"),
            ("<!-- forever", "unterminated comment"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{doc:?}: {} should contain {needle:?}",
                err.message
            );
            assert!(err.to_string().contains("XML error at byte"));
        }
    }

    #[test]
    fn whitespace_tolerant_tags() {
        let n = parse("<a  x = \"1\" \n  ></a  >").unwrap();
        assert_eq!(n.get_attr("x"), Some("1"));
    }

    #[test]
    fn text_is_trimmed_and_concatenated() {
        let n = parse("<a>  one <b/> two  </a>").unwrap();
        assert_eq!(n.text, "one  two");
    }

    #[test]
    fn builder_api() {
        let n = XmlNode::new("root")
            .attr("k", 3)
            .child(XmlNode::new("leaf").attr("v", 1.5));
        assert_eq!(n.get_attr("k"), Some("3"));
        assert_eq!(n.first_child("leaf").unwrap().get_attr("v"), Some("1.5"));
    }
}
