//! Pretty-printing XML writer.

use crate::parser::escape;
use crate::XmlNode;
use std::fmt::Write as _;

impl XmlNode {
    /// Serializes the element (and its subtree) as an indented XML
    /// document fragment. Attributes are emitted in sorted order, so the
    /// output is deterministic.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }

    /// Serializes with an `<?xml?>` declaration prepended.
    pub fn to_xml_document(&self) -> String {
        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}",
            self.to_xml()
        )
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}<{}", self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            let _ = writeln!(out, "/>");
            return;
        }
        if self.children.is_empty() {
            let _ = writeln!(out, ">{}</{}>", escape(&self.text), self.name);
            return;
        }
        let _ = writeln!(out, ">");
        if !self.text.is_empty() {
            let _ = writeln!(out, "{pad}  {}", escape(&self.text));
        }
        for child in &self.children {
            child.write_into(out, depth + 1);
        }
        let _ = writeln!(out, "{pad}</{}>", self.name);
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, XmlNode};

    #[test]
    fn writes_self_closing_for_empty() {
        assert_eq!(XmlNode::new("a").to_xml(), "<a/>\n");
    }

    #[test]
    fn writes_attributes_sorted() {
        let x = XmlNode::new("a").attr("zeta", 1).attr("alpha", 2).to_xml();
        assert_eq!(x, "<a alpha=\"2\" zeta=\"1\"/>\n");
    }

    #[test]
    fn writes_text_inline() {
        let x = XmlNode::new("a");
        let mut x = x;
        x.text = "hi".into();
        assert_eq!(x.to_xml(), "<a>hi</a>\n");
    }

    #[test]
    fn nested_structure_roundtrips() {
        let node = XmlNode::new("topology")
            .attr("name", "t")
            .child(XmlNode::new("operator").attr("id", 0).attr("name", "src"))
            .child(
                XmlNode::new("operator")
                    .attr("id", 1)
                    .child(XmlNode::new("param").attr("k", "window").attr("v", 10)),
            );
        let text = node.to_xml_document();
        assert!(text.starts_with("<?xml"));
        let back = parse(&text).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn indentation_is_two_spaces_per_level() {
        let node = XmlNode::new("a").child(XmlNode::new("b").child(XmlNode::new("c")));
        let text = node.to_xml();
        assert!(text.contains("\n  <b>"));
        assert!(text.contains("\n    <c/>"));
    }

    #[test]
    fn escapes_attribute_values() {
        let x = XmlNode::new("a").attr("t", "x<y&z").to_xml();
        assert!(x.contains("x&lt;y&amp;z"));
    }
}
