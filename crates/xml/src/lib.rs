//! # spinstreams-xml
//!
//! The XML topology-description formalism of §4.1, implemented from
//! scratch (no external XML dependency):
//!
//! * a small well-formed-XML [`parser`](parse) and [`writer`](XmlNode::to_xml)
//!   supporting elements, attributes, self-closing tags, comments, an
//!   optional declaration, and the five standard entities;
//! * the topology schema ([`topology_to_xml`] / [`topology_from_xml`]):
//!   operators with name, service time (with explicit time unit), type
//!   (stateless / stateful / partitioned-stateful with key frequencies),
//!   selectivities and factory parameters; edges with probabilities —
//!   "the syntax provides tags to specify the operators, with attributes
//!   for their name, the service rate (specifying the time unit), …, the
//!   type, … other tags specify the output edges and their probability,
//!   and the input/output selectivity" (§4.1).
//!
//! # Example
//!
//! ```
//! use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
//! use spinstreams_xml::{topology_from_xml, topology_to_xml};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Topology::builder();
//! let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
//! let m = b.add_operator(OperatorSpec::stateless("map", ServiceTime::from_millis(2.0)));
//! b.add_edge(s, m, 1.0)?;
//! let topo = b.build()?;
//!
//! let xml = topology_to_xml(&topo, "example");
//! let back = topology_from_xml(&xml)?;
//! assert_eq!(topo, back);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod parser;
mod schema;
mod writer;

pub use parser::{parse, XmlError, XmlNode};
pub use schema::{
    runtime_settings_from_xml, scenario_from_xml, scenario_to_xml, topology_from_xml,
    topology_to_xml, topology_to_xml_with_settings, AdaptiveSettings, RuntimeSettings, SchemaError,
};
