#!/usr/bin/env python3
"""Validate a BENCH_runtime.json produced by the `throughput` bench binary.

Usage: validate_bench.py <BENCH_runtime.json>

Structural checks (always):
  * schema tag is "spinstreams-bench-runtime/5", mode is "full" or
    "smoke";
  * every (topology, executor, workers, batch size) cell of the sweep —
    thread-per-actor plus the worker pool at each advertised worker
    count — is present exactly once, with positive items/wall/throughput,
    a positive speedup, and a non-negative differential allocation count;
  * each configuration's batch-1 record has speedup 1.0 (it is that
    configuration's baseline).

Performance gates (full mode only — smoke runs are too short to be
meaningful):
  * the contended pipeline under thread-per-actor at batch 64 must be at
    least 2x its unbatched throughput (the envelope-batching gate);
  * on pipeline or replicated, the best executor at batch 64 must reach
    1.5x the pre-pool baseline recorded before the executor rework
    (the hot-path gate);
  * the best batch-64 configuration on the monomorphized `fused` topology
    must reach 1.5x the PR 7 pipeline batch-64 baseline (the fusion
    gate — compiling the interior stages into one statically dispatched
    chain removes one mailbox crossing in three and the per-member
    dynamic-dispatch hop, and must pay off end to end);
  * every `fused` record's differential allocation count must be zero
    (<= 0.001 allocs/tuple of jitter headroom) — the steady-state data
    path of a monomorphized chain performs no heap allocation (the
    zero-allocation gate);
  * on at least one topology, some pool worker count at batch 64 must
    match or beat thread-per-actor at the same batch size (the
    worker-pool sanity gate — on a single-core runner the pool mostly
    removes context switches, it cannot add parallelism);
  * the best batch-64 configuration on pipeline and on replicated must
    stay within 5% of the throughput recorded before the checkpointing
    layer landed (the checkpoint-off gate — the bench runs with
    checkpointing disabled, so any regression here is hot-path cost the
    feature was required not to add);
  * the batch-64 pipeline with the sampled span flight recorder armed
    must reach at least 0.95x its untraced throughput, and must have
    retained span events (the tracing-overhead gate);
  * a plan-cache hit must cost at most 0.1x the cold (profile + optimize)
    miss latency (the plan-cache gate);
  * four paced tenants co-scheduled on the shared pool must reach at
    least 0.8x the sum of their solo throughputs (the multi-tenant gate).

Exits non-zero (with a message) on the first violation.
"""

import json
import sys

TOPOLOGIES = {"pipeline", "fused", "fanout", "replicated"}
BATCH_SIZES = {1, 8, 64}
WORKER_COUNTS = {1, 2, 4}
MIN_PIPELINE_SPEEDUP = 2.0
MIN_POOL_RATIO = 1.0
# Batch-64 tuples/sec recorded in BENCH_runtime.json before the worker
# pool and the hot-path rework (thread-per-actor, same machine class).
BASELINE_64 = {"pipeline": 2_001_882.0, "replicated": 1_686_061.0}
MIN_BASELINE_SPEEDUP = 1.5
# Pipeline batch-64 tuples/sec under thread-per-actor recorded in
# BENCH_runtime.json as of PR 7 (causal span tracing), before operator
# fusion was monomorphized. The fused topology is the same shape with its
# interior compiled into one statically dispatched chain actor and must
# beat this by MIN_FUSED_SPEEDUP end to end.
PR7_PIPELINE_64 = 4_770_772.8
MIN_FUSED_SPEEDUP = 1.5
# Differential allocations per tuple tolerated on the fused topology:
# nominally zero, with one allocation per thousand tuples of headroom for
# one-off events (a parked-thread registry growing once, etc.).
MAX_FUSED_ALLOCS_PER_TUPLE = 0.001
# Best batch-64 tuples/sec per topology recorded in BENCH_runtime.json
# immediately before the checkpointing layer landed. The bench never
# enables checkpointing, so these runs must not pay for its existence.
CHECKPOINT_OFF_BASELINE_64 = {"pipeline": 5_513_932.0, "replicated": 5_118_869.0}
MAX_CHECKPOINT_REGRESSION = 0.05
MIN_TRACING_RATIO = 0.95
# A plan-cache hit skips the profiling run and Algorithms 1-3 entirely;
# anything above a tenth of the miss latency means the cache is not
# actually short-circuiting the cold path.
MAX_CACHE_HIT_RATIO = 0.1
# Concurrent aggregate vs summed solo throughput of the paced tenants.
MIN_MULTITENANT_RATIO = 0.8


def fail(msg):
    sys.exit(f"{sys.argv[1]}: {msg}")


def validate(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"invalid JSON: {e}")

    if doc.get("schema") != "spinstreams-bench-runtime/5":
        fail(f"unknown schema tag {doc.get('schema')!r}")
    mode = doc.get("mode")
    if mode not in ("full", "smoke"):
        fail(f"unknown mode {mode!r}")
    if set(doc.get("batch_sizes", [])) != BATCH_SIZES:
        fail(f"batch_sizes must be {sorted(BATCH_SIZES)}")
    if set(doc.get("worker_counts", [])) != WORKER_COUNTS:
        fail(f"worker_counts must be {sorted(WORKER_COUNTS)}")

    configs = [("threads", None)] + [("pool", w) for w in sorted(WORKER_COUNTS)]

    seen = {}
    for r in doc.get("results", []):
        key = (r.get("topology"), r.get("executor"), r.get("workers"),
               r.get("batch_size"))
        if key[0] not in TOPOLOGIES:
            fail(f"unknown topology {key[0]!r}")
        if (key[1], key[2]) not in configs:
            fail(f"unknown executor config {key[1]!r}/workers={key[2]!r}")
        if key[3] not in BATCH_SIZES:
            fail(f"unknown batch size {key[3]!r}")
        if key in seen:
            fail(f"duplicate record for {key}")
        for field in ("items", "wall_s", "tuples_per_sec", "speedup_vs_batch1"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                fail(f"{key}: field {field!r} must be positive, got {v!r}")
        allocs = r.get("allocs_per_tuple")
        if not isinstance(allocs, (int, float)) or allocs < 0:
            fail(f"{key}: field 'allocs_per_tuple' must be non-negative, "
                 f"got {allocs!r}")
        if key[3] == 1 and abs(r["speedup_vs_batch1"] - 1.0) > 1e-9:
            fail(f"{key}: batch-1 baseline must report speedup 1.0")
        seen[key] = r

    expected = {(t, e, w, b)
                for t in TOPOLOGIES for (e, w) in configs for b in BATCH_SIZES}
    missing = expected - set(seen)
    if missing:
        fail(f"missing records: {sorted(missing, key=str)}")

    tracing = doc.get("tracing")
    if not isinstance(tracing, dict):
        fail("missing 'tracing' section (schema /4)")
    for field in ("untraced_tuples_per_sec", "traced_tuples_per_sec", "ratio"):
        v = tracing.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            fail(f"tracing field {field!r} must be positive, got {v!r}")
    if not isinstance(tracing.get("span_events"), int):
        fail("tracing field 'span_events' must be an int")

    cache = doc.get("plan_cache")
    if not isinstance(cache, dict):
        fail("missing 'plan_cache' section (schema /5)")
    for field in ("plan_cache_miss_ms", "plan_cache_hit_ms", "ratio"):
        v = cache.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            fail(f"plan_cache field {field!r} must be positive, got {v!r}")
    if not isinstance(cache.get("plan_checksum"), str):
        fail("plan_cache field 'plan_checksum' must be a string")

    mt = doc.get("multitenant")
    if not isinstance(mt, dict):
        fail("missing 'multitenant' section (schema /5)")
    solos = mt.get("solo_tuples_per_sec")
    if not isinstance(solos, list) or not solos or \
            any(not isinstance(v, (int, float)) or v <= 0 for v in solos):
        fail("multitenant field 'solo_tuples_per_sec' must be a non-empty "
             "list of positive rates")
    if mt.get("tenants") != len(solos):
        fail(f"multitenant 'tenants' ({mt.get('tenants')!r}) != "
             f"{len(solos)} solo rates")
    for field in ("solo_sum", "aggregate_tuples_per_sec", "ratio"):
        v = mt.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            fail(f"multitenant field {field!r} must be positive, got {v!r}")

    if mode == "full":
        speedup = seen[("pipeline", "threads", None, 64)]["speedup_vs_batch1"]
        if speedup < MIN_PIPELINE_SPEEDUP:
            fail(f"pipeline (threads) at batch 64 is only {speedup:.2f}x over "
                 f"batch 1, expected >= {MIN_PIPELINE_SPEEDUP}x")
        best_gain = None
        for t, base in BASELINE_64.items():
            for (e, w) in configs:
                gain = seen[(t, e, w, 64)]["tuples_per_sec"] / base
                if best_gain is None or gain > best_gain[0]:
                    best_gain = (gain, t, e, w)
        if best_gain[0] < MIN_BASELINE_SPEEDUP:
            fail(f"best batch-64 throughput is only {best_gain[0]:.2f}x the "
                 f"pre-pool baseline ({best_gain[1]}, {best_gain[2]}), "
                 f"expected >= {MIN_BASELINE_SPEEDUP}x on pipeline or "
                 f"replicated")
        print(f"{path}: hot-path gate — {best_gain[0]:.2f}x over the pre-pool "
              f"baseline ({best_gain[1]}, {best_gain[2]}"
              f"{'' if best_gain[3] is None else f', {best_gain[3]} workers'}, "
              f"batch 64)")
        best_fused = max(((seen[("fused", e, w, 64)]["tuples_per_sec"], e, w)
                          for (e, w) in configs), key=lambda c: c[0])
        fused_gain = best_fused[0] / PR7_PIPELINE_64
        if fused_gain < MIN_FUSED_SPEEDUP:
            fail(f"best fused batch-64 throughput is only {fused_gain:.2f}x "
                 f"the PR 7 pipeline baseline ({best_fused[0]:,.0f} vs "
                 f"{PR7_PIPELINE_64:,.0f} tup/s), expected >= "
                 f"{MIN_FUSED_SPEEDUP}x from monomorphized fusion")
        print(f"{path}: fusion gate — fused at {fused_gain:.2f}x the PR 7 "
              f"pipeline baseline ({best_fused[1]}"
              f"{'' if best_fused[2] is None else f', {best_fused[2]} workers'}"
              f", batch 64)")
        worst_allocs = max(((r["allocs_per_tuple"], key)
                            for key, r in seen.items() if key[0] == "fused"),
                           key=lambda c: c[0])
        if worst_allocs[0] > MAX_FUSED_ALLOCS_PER_TUPLE:
            fail(f"{worst_allocs[1]}: fused steady state allocates "
                 f"{worst_allocs[0]:.4f} per tuple, expected <= "
                 f"{MAX_FUSED_ALLOCS_PER_TUPLE} (the data path must be "
                 f"allocation-free)")
        print(f"{path}: zero-allocation gate — worst fused record at "
              f"{worst_allocs[0]:.4f} allocs/tuple")
        best_pool = None
        for t in sorted(TOPOLOGIES):
            threads = seen[(t, "threads", None, 64)]["tuples_per_sec"]
            for w in sorted(WORKER_COUNTS):
                ratio = seen[(t, "pool", w, 64)]["tuples_per_sec"] / threads
                if best_pool is None or ratio > best_pool[0]:
                    best_pool = (ratio, t, w)
        if best_pool[0] < MIN_POOL_RATIO:
            fail(f"best pool-vs-threads ratio at batch 64 is only "
                 f"{best_pool[0]:.2f}x ({best_pool[1]}, {best_pool[2]} workers), "
                 f"expected >= {MIN_POOL_RATIO}x on at least one topology")
        print(f"{path}: pool executor gate — {best_pool[0]:.2f}x over threads "
              f"({best_pool[1]}, {best_pool[2]} workers, batch 64)")
        for t, base in CHECKPOINT_OFF_BASELINE_64.items():
            best = max(seen[(t, e, w, 64)]["tuples_per_sec"]
                       for (e, w) in configs)
            ratio = best / base
            if ratio < 1.0 - MAX_CHECKPOINT_REGRESSION:
                fail(f"{t}: best batch-64 checkpoint-off throughput is "
                     f"{ratio:.3f}x the pre-checkpointing baseline "
                     f"({best:,.0f} vs {base:,.0f} tup/s) — the disabled "
                     f"checkpoint layer must stay within "
                     f"{MAX_CHECKPOINT_REGRESSION:.0%} of it")
            print(f"{path}: checkpoint-off gate — {t} at {ratio:.3f}x the "
                  f"pre-checkpointing baseline")
        ratio = tracing["ratio"]
        if ratio < MIN_TRACING_RATIO:
            fail(f"sampled tracing costs too much: traced batch-64 pipeline "
                 f"runs at {ratio:.3f}x untraced, expected >= "
                 f"{MIN_TRACING_RATIO}x")
        if tracing["span_events"] <= 0:
            fail("traced run retained no span events — the flight recorder "
                 "never fired")
        print(f"{path}: tracing-overhead gate — traced at {ratio:.3f}x "
              f"untraced ({tracing['span_events']} span event(s))")
        cache_ratio = cache["ratio"]
        if cache_ratio > MAX_CACHE_HIT_RATIO:
            fail(f"plan-cache hit costs {cache_ratio:.4f}x the miss "
                 f"({cache['plan_cache_hit_ms']:.4f} vs "
                 f"{cache['plan_cache_miss_ms']:.2f} ms), expected <= "
                 f"{MAX_CACHE_HIT_RATIO}x — the cache must skip the cold "
                 f"path")
        print(f"{path}: plan-cache gate — hit at "
              f"{1 / cache_ratio:.0f}x faster than the cold path "
              f"({cache['plan_cache_hit_ms']:.4f} vs "
              f"{cache['plan_cache_miss_ms']:.2f} ms)")
        mt_ratio = mt["ratio"]
        if mt_ratio < MIN_MULTITENANT_RATIO:
            fail(f"multi-tenant aggregate is only {mt_ratio:.3f}x the summed "
                 f"solo throughput ({mt['aggregate_tuples_per_sec']:,.0f} vs "
                 f"{mt['solo_sum']:,.0f} tup/s), expected >= "
                 f"{MIN_MULTITENANT_RATIO}x on the shared pool")
        print(f"{path}: multi-tenant gate — {mt['tenants']} tenants at "
              f"{mt_ratio:.3f}x their summed solo throughput")

    best = max(r["speedup_vs_batch1"] for r in seen.values())
    print(f"{path}: OK — {len(seen)} records ({mode} mode), "
          f"best batching speedup {best:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    validate(sys.argv[1])
