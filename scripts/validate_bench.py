#!/usr/bin/env python3
"""Validate a BENCH_runtime.json produced by the `throughput` bench binary.

Usage: validate_bench.py <BENCH_runtime.json>

Structural checks (always):
  * schema tag is "spinstreams-bench-runtime/1", executor is "threads",
    mode is "full" or "smoke";
  * every (topology, batch size) pair in the sweep is present exactly
    once, with positive items/wall/throughput and a positive speedup;
  * each topology's batch-1 record has speedup 1.0 (it is the baseline).

Performance gate (full mode only — smoke runs are too short to be
meaningful): the contended pipeline at batch 64 must be at least 2x the
unbatched throughput.

Exits non-zero (with a message) on the first violation.
"""

import json
import sys

TOPOLOGIES = {"pipeline", "fanout", "replicated"}
BATCH_SIZES = {1, 8, 64}
MIN_PIPELINE_SPEEDUP = 2.0


def fail(msg):
    sys.exit(f"{sys.argv[1]}: {msg}")


def validate(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"invalid JSON: {e}")

    if doc.get("schema") != "spinstreams-bench-runtime/1":
        fail(f"unknown schema tag {doc.get('schema')!r}")
    mode = doc.get("mode")
    if mode not in ("full", "smoke"):
        fail(f"unknown mode {mode!r}")
    if doc.get("executor") != "threads":
        fail(f"unexpected executor {doc.get('executor')!r}")
    if set(doc.get("batch_sizes", [])) != BATCH_SIZES:
        fail(f"batch_sizes must be {sorted(BATCH_SIZES)}")

    seen = {}
    for r in doc.get("results", []):
        key = (r.get("topology"), r.get("batch_size"))
        if key[0] not in TOPOLOGIES:
            fail(f"unknown topology {key[0]!r}")
        if key[1] not in BATCH_SIZES:
            fail(f"unknown batch size {key[1]!r}")
        if key in seen:
            fail(f"duplicate record for {key}")
        for field in ("items", "wall_s", "tuples_per_sec", "speedup_vs_batch1"):
            v = r.get(field)
            if not isinstance(v, (int, float)) or v <= 0:
                fail(f"{key}: field {field!r} must be positive, got {v!r}")
        if key[1] == 1 and abs(r["speedup_vs_batch1"] - 1.0) > 1e-9:
            fail(f"{key}: batch-1 baseline must report speedup 1.0")
        seen[key] = r

    missing = {(t, b) for t in TOPOLOGIES for b in BATCH_SIZES} - set(seen)
    if missing:
        fail(f"missing records: {sorted(missing)}")

    if mode == "full":
        speedup = seen[("pipeline", 64)]["speedup_vs_batch1"]
        if speedup < MIN_PIPELINE_SPEEDUP:
            fail(f"pipeline at batch 64 is only {speedup:.2f}x over batch 1, "
                 f"expected >= {MIN_PIPELINE_SPEEDUP}x")

    best = max(r["speedup_vs_batch1"] for r in seen.values())
    print(f"{path}: OK — {len(seen)} records ({mode} mode), "
          f"best speedup {best:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    validate(sys.argv[1])
