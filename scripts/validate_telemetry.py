#!/usr/bin/env python3
"""Validate a SpinStreams telemetry JSON-lines export against the schema
documented in the README's Observability section.

Usage: validate_telemetry.py <telemetry.jsonl> [--min-snapshots N]

Checks, for every line:
  * it parses as a JSON object with "type" of "snapshot" or "trace";
  * snapshots carry monotonically increasing ticks/timestamps, per-actor
    rate/queue/counter fields of the right types, latency summaries with
    ordered quantiles, well-formed drift verdicts when present, and — in
    multi-tenant exports — a tenant label mirrored on every actor;
  * traces carry gap-free sequence numbers and known event names.

Exits non-zero (with a message) on the first violation.
"""

import json
import math
import sys

ACTOR_FIELDS = {
    "id": int,
    "name": str,
    "items_in": int,
    "items_out": int,
    "arrival_rate": (int, float),
    "departure_rate": (int, float),
    "utilization": (int, float),
    "panics": int,
    "restarts": int,
    "dead_letters": int,
    "dropped": int,
    "busy_ns": int,
    "blocked_ns": int,
    "inbox_stall_ns": int,
    "snapshots": int,
    "snapshot_bytes": int,
    "align_stall_ns": int,
    "recoveries": int,
    "replayed": int,
    "replay_overflows": int,
}
LATENCY_FIELDS = {"sink": int, "name": str, "count": int, "mean_ns": int,
                  "p50_ns": int, "p95_ns": int, "p99_ns": int, "max_ns": int}
DRIFT_STATUSES = {"warmup", "no-data", "ok", "drifting"}
TRACE_EVENTS = {
    "actor-started", "actor-finished", "operator-panicked",
    "operator-restarted", "backoff", "actor-stopped", "blocked",
    "dead-letter", "checkpoint-completed", "recovered", "span",
    "reconfigured", "state-migrated",
}
# Rate/ratio fields that must be finite numbers: a NaN or infinity here
# parses fine as JSON (Python accepts the non-standard literals) but
# poisons every downstream aggregation.
FINITE_ACTOR_FIELDS = ("arrival_rate", "departure_rate", "utilization")


def fail(lineno, msg):
    sys.exit(f"{sys.argv[1]}:{lineno}: {msg}")


def check_fields(lineno, obj, fields, what):
    for name, ty in fields.items():
        if name not in obj:
            fail(lineno, f"{what} missing field {name!r}: {obj}")
        if not isinstance(obj[name], ty):
            fail(lineno, f"{what} field {name!r} has type "
                         f"{type(obj[name]).__name__}, expected {ty}")


def validate(path, min_snapshots):
    snapshots = traces = 0
    prev_tick = prev_t = -1
    prev_seq = -1
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"invalid JSON: {e}")
            kind = obj.get("type")
            if kind == "snapshot":
                snapshots += 1
                if traces:
                    fail(lineno, "snapshot after trace records")
                if obj["tick"] <= prev_tick or obj["t_ns"] <= prev_t:
                    fail(lineno, "non-monotonic tick/t_ns")
                prev_tick, prev_t = obj["tick"], obj["t_ns"]
                if obj["interval_ns"] <= 0:
                    fail(lineno, "non-positive interval_ns")
                if not obj["actors"]:
                    fail(lineno, "snapshot with no actors")
                # Multi-tenant exports label the snapshot and every actor
                # with the tenant name; solo exports omit it entirely.
                tenant = obj.get("tenant")
                if tenant is not None and not isinstance(tenant, str):
                    fail(lineno, "tenant must be a string")
                for a in obj["actors"]:
                    check_fields(lineno, a, ACTOR_FIELDS, "actor")
                    if a.get("tenant") != tenant:
                        fail(lineno, f"actor tenant {a.get('tenant')!r} "
                                     f"!= snapshot tenant {tenant!r}")
                    for opt in ("queue_depth", "queue_capacity"):
                        if a[opt] is not None and not isinstance(a[opt], int):
                            fail(lineno, f"actor {opt} must be int or null")
                    for name in FINITE_ACTOR_FIELDS:
                        if math.isnan(a[name]) or math.isinf(a[name]):
                            fail(lineno, f"non-finite {name}: {a}")
                    if not 0.0 <= a["utilization"] <= 1.0 + 1e-9:
                        fail(lineno, f"utilization out of range: {a}")
                for l in obj["latency"]:
                    check_fields(lineno, l, LATENCY_FIELDS, "latency")
                    if not (l["p50_ns"] <= l["p95_ns"] <= l["p99_ns"]
                            <= l["max_ns"]):
                        fail(lineno, f"latency quantiles out of order: {l}")
                epoch = obj.get("last_complete_epoch")
                if epoch is not None and not isinstance(epoch, int):
                    fail(lineno, "last_complete_epoch must be int or null")
                for v in obj.get("drift", []):
                    if v["status"] not in DRIFT_STATUSES:
                        fail(lineno, f"unknown drift status: {v}")
                    if v["status"] in ("ok", "drifting") \
                            and v["rel_error"] is None:
                        fail(lineno, f"judged verdict without rel_error: {v}")
                    err = v.get("rel_error")
                    if err is not None and \
                            (math.isnan(err) or math.isinf(err)):
                        fail(lineno, f"non-finite rel_error: {v}")
            elif kind == "trace":
                traces += 1
                if obj["seq"] <= prev_seq:
                    fail(lineno, "non-monotonic trace seq")
                prev_seq = obj["seq"]
                if obj["event"] not in TRACE_EVENTS:
                    fail(lineno, f"unknown trace event {obj['event']!r}")
                if obj["t_ns"] < 0 or obj["actor"] < 0:
                    fail(lineno, f"bad trace record: {obj}")
                if obj["event"] == "span":
                    if not isinstance(obj.get("tuple_seq"), int) \
                            or not isinstance(obj.get("src_ns"), int):
                        fail(lineno, f"span without tuple_seq/src_ns: {obj}")
            else:
                fail(lineno, f"unknown record type {kind!r}")
    if snapshots < min_snapshots:
        sys.exit(f"{path}: only {snapshots} snapshot(s), "
                 f"expected at least {min_snapshots}")
    print(f"{path}: OK — {snapshots} snapshot(s), {traces} trace record(s)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip())
    n = 1
    if "--min-snapshots" in sys.argv:
        n = int(sys.argv[sys.argv.index("--min-snapshots") + 1])
    validate(sys.argv[1], n)
