//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal measuring harness with the same call signatures:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It times each closure
//! over a short fixed window and prints mean per-iteration latency — no
//! statistics, plots, or baseline comparisons.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// The bench harness entry point.
pub struct Criterion {
    /// When true (`--test`), run each benchmark once and skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Compatibility no-op (upstream configures sampling here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (upstream configures sampling here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.test_mode, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        run_one(&full, self.criterion.test_mode, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measures `f` repeatedly over the sampling window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // Warm-up: also calibrates how many iterations fill the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((MEASURE_WINDOW.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{name:<50} {:>12.3} ns/iter ({} iters)",
            per_iter * 1e9,
            b.iters
        );
    } else {
        println!("{name:<50} (no measurement)");
    }
}

/// Declares a group of benchmark functions, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true };
        let mut ran = false;
        c.bench_function("probe", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            for n in [1u32, 2] {
                g.bench_with_input(BenchmarkId::new("case", n), &n, |b, x| {
                    b.iter(|| count += *x)
                });
            }
            g.bench_function("plain", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 4);
    }
}
