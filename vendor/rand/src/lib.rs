//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation with the same call signatures. The
//! generator is a splitmix64-seeded xorshift64* — statistically fine for
//! topology generation and benchmarks, but NOT a drop-in for the upstream
//! `StdRng` stream: code relying on exact upstream sequences would need the
//! real crate.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and inclusive ranges.
///
/// Mirrors upstream rand's single-blanket-impl structure so type inference
/// behaves identically (`gen_range(3..=10)` infers the element type from
/// how the result is used).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Maps 64 random bits to a `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                } else {
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}

impl_int_sample_uniform!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Deterministic RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xorshift64*
    /// seeded through splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so near-zero seeds still start well mixed.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.gen_range(0u64..=u64::MAX);
        let b = rng.gen_range(0u64..=u64::MAX);
        assert_ne!(a, b);
    }
}
