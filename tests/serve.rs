//! Tier-1 multi-tenant serving tests: N seeded tenants co-scheduled on one
//! shared engine must reproduce their solo sink counts exactly across both
//! executors and batch sizes; identical submissions must hit the plan
//! cache and get the byte-identical plan; the admission model must queue
//! and reject predicted oversubscription before deployment; and the PR 9
//! migration hook must swap the cached plan in place.

use spinstreams::analysis::{AdmissionConfig, AdmissionVerdict, PlanChange};
use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::{EngineConfig, ExecutorKind};
use spinstreams::serve::{ServeConfig, StreamService, SubmitRequest, TenantState};
use spinstreams::tool::{run_multitenant_layer_with, tenant_topology, MultiTenantConfig};

const SEED: u64 = 7;

fn scenario(workers: Option<usize>, batch: usize) -> MultiTenantConfig {
    MultiTenantConfig {
        tenants: 3,
        items: 600,
        batch_size: batch,
        workers,
        tolerance: 0.25,
    }
}

/// A serving front end that trusts the submitted annotations (no
/// profiling run) on a single-worker shared pool.
fn service(workers: usize) -> StreamService {
    let engine = EngineConfig {
        executor: ExecutorKind::Pool { workers },
        ..EngineConfig::default()
    };
    let mut cfg = ServeConfig::new(engine);
    cfg.calibration_items = 0;
    StreamService::new(cfg)
}

/// A paced two-stage pipeline whose single worker stage costs `work_us`
/// per item against a `pace_us`-throttled source.
fn pipeline(pace_us: f64, work_us: f64) -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(pace_us)).with_kind("source"),
    );
    let w = b.add_operator(
        OperatorSpec::stateless("work", ServiceTime::from_micros(work_us))
            .with_kind("identity-map")
            .with_param("work_ns", work_us * 1_000.0),
    );
    b.add_edge(s, w, 1.0).unwrap();
    b.build().unwrap()
}

// ---------------------------------------------------------------------
// Shared-pool isolation: solo == concurrent, per tenant, exactly.
// ---------------------------------------------------------------------

#[test]
fn three_tenants_on_the_shared_pool_match_solo_across_batch_sizes() {
    for batch in [1, 8, 64] {
        let report = run_multitenant_layer_with(SEED, &scenario(Some(1), batch))
            .unwrap_or_else(|e| panic!("batch {batch}: {e}"));
        assert!(
            report.is_clean(),
            "pool batch {batch}: {:?}",
            report.divergences
        );
        assert_eq!(report.tenants.len(), 3);
        for t in &report.tenants {
            assert_eq!(
                t.solo_sink, t.concurrent_sink,
                "tenant {} sinks diverged at batch {batch}",
                t.name
            );
            assert!(t.solo_sink > 0, "tenant {} delivered nothing", t.name);
        }
    }
}

#[test]
fn three_tenants_thread_per_actor_match_solo_across_batch_sizes() {
    for batch in [1, 8, 64] {
        let report = run_multitenant_layer_with(SEED + 1, &scenario(None, batch))
            .unwrap_or_else(|e| panic!("batch {batch}: {e}"));
        assert!(
            report.is_clean(),
            "thread-per-actor batch {batch}: {:?}",
            report.divergences
        );
        for t in &report.tenants {
            assert_eq!(t.solo_sink, t.concurrent_sink);
        }
    }
}

// ---------------------------------------------------------------------
// Plan cache: identical submissions hit and reuse the identical plan.
// ---------------------------------------------------------------------

#[test]
fn cache_hit_returns_the_byte_identical_plan() {
    let mut svc = service(1);
    let topo = tenant_topology(SEED, 0);
    let cold = svc
        .submit(SubmitRequest::new("cold", topo.clone()).with_items(500))
        .unwrap();
    assert!(!cold.cache_hit);
    let warm = svc
        .submit(SubmitRequest::new("warm", topo).with_items(500))
        .unwrap();
    assert!(warm.cache_hit);
    assert_eq!(cold.key, warm.key);
    assert_eq!(cold.plan_checksum, warm.plan_checksum);
    // Byte equality of the canonical plan text, not just the checksum.
    assert_eq!(
        svc.plan_text("cold").unwrap(),
        svc.plan_text("warm").unwrap()
    );
    let stats = svc.cache_stats();
    assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));

    // Any annotation change must produce a different key (cold path again).
    let other = tenant_topology(SEED, 1);
    let fresh = svc
        .submit(SubmitRequest::new("other", other).with_items(500))
        .unwrap();
    assert!(!fresh.cache_hit);
    assert_ne!(fresh.key, cold.key);
}

// ---------------------------------------------------------------------
// Admission: the model queues and rejects *before* deployment.
// ---------------------------------------------------------------------

#[test]
fn admission_rejects_predicted_oversubscription() {
    let mut svc = service(1);
    // Usable capacity: 1 core × 90 % headroom. A 2 k/s source against a
    // 1 ms stage predicts ρ = 2: Algorithm 2 replicates it, but the plan
    // still demands ~2 worker cores — far beyond 0.9.
    let heavy = svc
        .submit(SubmitRequest::new("heavy", pipeline(500.0, 1_000.0)).with_items(100))
        .unwrap();
    assert_eq!(heavy.state, TenantState::Rejected);
    match heavy.verdict {
        AdmissionVerdict::Reject {
            demand_cores,
            capacity_cores,
            deficit_cores,
            predicted_throughput_fraction,
        } => {
            assert!(demand_cores > capacity_cores);
            assert!((deficit_cores - (demand_cores - capacity_cores)).abs() < 1e-9);
            assert!(
                predicted_throughput_fraction > 0.0 && predicted_throughput_fraction < 1.0,
                "fraction = {predicted_throughput_fraction}"
            );
        }
        other => panic!("expected Reject, got {other:?}"),
    }
    // Rejected tenants never launch and hold no demand.
    assert_eq!(svc.running_demand(), 0.0);
    assert!(svc.launch().unwrap().is_empty());
}

#[test]
fn queued_tenant_is_promoted_when_capacity_frees() {
    let engine = EngineConfig {
        executor: ExecutorKind::Pool { workers: 1 },
        ..EngineConfig::default()
    };
    let mut cfg = ServeConfig::new(engine);
    cfg.calibration_items = 0;
    cfg.admission = AdmissionConfig {
        capacity_cores: 0.5,
        headroom: 1.0,
    };
    let mut svc = StreamService::new(cfg);
    // Each pipeline demands 0.4 worker cores (2 k/s × 200 µs).
    let a = svc
        .submit(SubmitRequest::new("a", pipeline(500.0, 200.0)).with_items(100))
        .unwrap();
    assert_eq!(a.state, TenantState::Admitted);
    let b = svc
        .submit(SubmitRequest::new("b", pipeline(500.0, 200.0)).with_items(200))
        .unwrap();
    assert_eq!(b.state, TenantState::Queued);
    match b.verdict {
        AdmissionVerdict::Queue {
            demand_cores,
            available_cores,
        } => assert!(demand_cores > available_cores),
        other => panic!("expected Queue, got {other:?}"),
    }
    svc.stop("a").unwrap();
    assert_eq!(svc.status()[1].state, TenantState::Admitted);
    // The promoted tenant actually runs at the next launch.
    let runs = svc.launch().unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].name, "b");
}

// ---------------------------------------------------------------------
// PR 9 integration: adaptive migrations update or invalidate the cache.
// ---------------------------------------------------------------------

#[test]
fn migration_hook_swaps_the_cached_plan_and_invalidation_evicts_it() {
    let mut svc = service(2);
    let topo = pipeline(500.0, 100.0);
    let cold = svc
        .submit(SubmitRequest::new("a", topo.clone()).with_items(100))
        .unwrap();

    let n = topo.num_operators();
    let change = PlanChange {
        replicas: vec![1, 2],
        old_replicas: vec![1; n],
        assignments: vec![None; n],
        predicted_throughput: 0.0,
        old_predicted_throughput: 0.0,
        stale: vec![],
        topology: topo.clone(),
    };
    svc.apply_migration("a", &change).unwrap();
    assert_eq!(svc.cache_stats().updates, 1);

    // Warm resubmission now yields the *migrated* plan under the same key.
    let warm = svc
        .submit(SubmitRequest::new("b", topo.clone()).with_items(100))
        .unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.key, cold.key);
    assert_ne!(warm.plan_checksum, cold.plan_checksum);
    assert!(svc.plan_text("b").unwrap().contains("replicas=[1,2]"));

    // Invalidation evicts; the next identical submission re-optimizes and
    // lands back on the original plan bytes.
    assert!(svc.invalidate("a").unwrap());
    let fresh = svc
        .submit(SubmitRequest::new("c", topo).with_items(100))
        .unwrap();
    assert!(!fresh.cache_hit);
    assert_eq!(fresh.plan_checksum, cold.plan_checksum);
}
