//! End-to-end integration: the full SpinStreams workflow across all crates
//! (XML import → analysis → optimization → code generation → execution →
//! model-vs-measurement validation).

use spinstreams::analysis::{eliminate_bottlenecks, steady_state};
use spinstreams::codegen::{build_actor_graph, emit_rust_source, CodegenOptions};
use spinstreams::core::{OperatorId, OperatorSpec, Selectivity, ServiceTime, Topology};
use spinstreams::runtime::{simulate, Executor, SimConfig};
use spinstreams::tool::{calibrate, predict_vs_measure};
use spinstreams::xml::{topology_from_xml, topology_to_xml};

fn executor() -> Executor {
    Executor::VirtualTime(SimConfig {
        mailbox_capacity: 32,
        seed: 0xE2E,
        ..SimConfig::default()
    })
}

/// A pipeline with a clear bottleneck, fully runnable (kinds + params).
fn pipeline() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let f = b.add_operator(
        OperatorSpec::stateless("filter", ServiceTime::from_micros(80.0))
            .with_kind("filter")
            .with_selectivity(Selectivity::output(0.5))
            .with_param("threshold", 0.5)
            .with_param("work_ns", 80_000.0),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("heavy", ServiceTime::from_micros(900.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 900_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(30.0))
            .with_kind("identity-map")
            .with_param("work_ns", 30_000.0),
    );
    b.add_edge(s, f, 1.0).unwrap();
    b.add_edge(f, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    b.build().unwrap()
}

#[test]
fn xml_roundtrip_preserves_analysis_results() {
    let topo = pipeline();
    let xml = topology_to_xml(&topo, "e2e");
    let back = topology_from_xml(&xml).unwrap();
    assert_eq!(topo, back);
    let a = steady_state(&topo);
    let b = steady_state(&back);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn model_predicts_measured_throughput_within_tolerance() {
    let topo = pipeline();
    // filter halves the stream: heavy sees 5000/s but serves ~1111/s →
    // bottleneck; δ₁ throttles to ~2222/s.
    let calibrated = calibrate(&topo, None, 8_000, 100, &executor()).unwrap();
    let cmp = predict_vs_measure(&calibrated, None, &[], &[], 20_000, &executor()).unwrap();
    assert!(
        cmp.relative_error() < 0.05,
        "predicted {} measured {}",
        cmp.predicted_throughput,
        cmp.measured_throughput
    );
    assert!(cmp.report.has_bottleneck());
}

#[test]
fn fission_plan_executes_and_restores_source_rate() {
    let topo = pipeline();
    let calibrated = calibrate(&topo, None, 8_000, 100, &executor()).unwrap();
    let plan = eliminate_bottlenecks(&calibrated);
    assert!(plan.ideal());
    assert!(plan.replicas[2] >= 4, "heavy stage needs several replicas");
    let cmp =
        predict_vs_measure(&calibrated, None, &plan.replicas, &[], 40_000, &executor()).unwrap();
    assert!(
        cmp.relative_error() < 0.05,
        "predicted {} measured {}",
        cmp.predicted_throughput,
        cmp.measured_throughput
    );
    // Parallelized throughput ≈ the 10k/s source rate.
    assert!(cmp.measured_throughput > 9_000.0);
}

#[test]
fn generated_plan_counts_every_item_exactly_once() {
    let topo = pipeline();
    let opts = CodegenOptions {
        items: 5_000,
        seed: 3,
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(&topo, None, &[1, 2, 3, 1], &[], &opts).unwrap();
    let report = simulate(
        plan.graph,
        &SimConfig {
            mailbox_capacity: 32,
            seed: 3,
            ..SimConfig::default()
        },
    )
    .unwrap();
    // Every source item passes the filter emitter stage exactly once.
    assert_eq!(report.actor(plan.input_actor[1]).items_in, 5_000);
    assert_eq!(report.total_dropped(), 0);
    // Filter keeps about half.
    let heavy_in = report.actor(plan.input_actor[2]).items_in;
    assert!(
        (heavy_in as f64 - 2_500.0).abs() < 150.0,
        "heavy saw {heavy_in}"
    );
}

#[test]
fn emitted_rust_source_reflects_the_deployment() {
    let topo = pipeline();
    let plan = eliminate_bottlenecks(&topo);
    let src = emit_rust_source(&topo, &plan.replicas, &[], &CodegenOptions::default());
    assert!(src.contains("fn main()"));
    assert!(src.contains("OperatorSpec::stateless(\"heavy\""));
    assert!(src.contains(&format!("vec!{:?}", plan.replicas)));
    // Balanced delimiters (cheap stand-in for compiling the emitted text).
    for (o, c) in [('{', '}'), ('(', ')'), ('[', ']')] {
        assert_eq!(src.matches(o).count(), src.matches(c).count());
    }
}

#[test]
fn threaded_and_virtual_executors_agree_on_counts() {
    // Functional equivalence of the two engines (rates differ on a loaded
    // host, item accounting must not).
    let topo = pipeline();
    let opts = CodegenOptions {
        items: 2_000,
        seed: 11,
        ..CodegenOptions::default()
    };
    let p1 = build_actor_graph(&topo, None, &[], &[], &opts).unwrap();
    let r1 = simulate(
        p1.graph,
        &SimConfig {
            mailbox_capacity: 32,
            seed: 11,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let p2 = build_actor_graph(&topo, None, &[], &[], &opts).unwrap();
    let r2 = spinstreams::runtime::run(
        p2.graph,
        &spinstreams::runtime::EngineConfig {
            mailbox_capacity: 32,
            seed: 11,
            ..Default::default()
        },
    )
    .unwrap();
    for id in [1usize, 2, 3] {
        assert_eq!(
            r1.actor(p1.input_actor[id]).items_in,
            r2.actor(p2.input_actor[id]).items_in,
            "operator {id} saw different item counts across executors"
        );
    }
}

#[test]
fn table1_and_table2_verdicts_reproduce() {
    // The §5.4 case study in compact form (details in the examples/bench).
    let times_feasible = [1.0, 1.2, 0.7, 2.0, 1.5, 0.2];
    let times_bottleneck = [1.0, 1.2, 1.5, 2.7, 2.2, 0.2];
    for (times, feasible, expect_ms) in [
        (times_feasible, true, 2.80),
        (times_bottleneck, false, 4.4225),
    ] {
        let mut b = Topology::builder();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| {
                b.add_operator(OperatorSpec::stateless(
                    format!("{}", i + 1),
                    ServiceTime::from_millis(*t),
                ))
            })
            .collect();
        b.add_edge(ids[0], ids[1], 0.7).unwrap();
        b.add_edge(ids[0], ids[2], 0.3).unwrap();
        b.add_edge(ids[1], ids[5], 1.0).unwrap();
        b.add_edge(ids[2], ids[3], 0.5).unwrap();
        b.add_edge(ids[2], ids[4], 0.5).unwrap();
        b.add_edge(ids[4], ids[3], 0.35).unwrap();
        b.add_edge(ids[4], ids[5], 0.65).unwrap();
        b.add_edge(ids[3], ids[5], 1.0).unwrap();
        let topo = b.build().unwrap();
        let members = [OperatorId(2), OperatorId(3), OperatorId(4)]
            .into_iter()
            .collect();
        let outcome = spinstreams::analysis::fuse(&topo, &members).unwrap();
        assert_eq!(outcome.is_feasible(), feasible);
        assert!((outcome.fused_service_time.as_millis() - expect_ms).abs() < 1e-9);
    }
}
