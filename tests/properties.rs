//! Property-based tests of the cost-model invariants over random
//! topologies (proptest).
//!
//! These check the paper's stated invariants on arbitrary rooted acyclic
//! flow graphs, not just hand-picked examples:
//!
//! * Invariant 3.1 — after Algorithm 1, every utilization is ≤ 1;
//! * Proposition 3.5 — flow conservation: total sink departure equals the
//!   source departure (identity selectivities);
//! * Proposition 3.4 — the number of vertex visits is O(|V|²);
//! * monotonicity — fission never predicts lower throughput;
//! * Definition 2 — `fusionRate` equals explicit path enumeration;
//! * idempotence of the steady state under its own departure rates.

use proptest::prelude::*;
use spinstreams::analysis::{
    apply_replica_bound, eliminate_bottlenecks, evaluate_with_replicas, fusion_service_time,
    steady_state,
};
use spinstreams::core::{
    enumerate_paths, KeyDistribution, OperatorId, OperatorSpec, ServiceTime, StateClass,
    Topology,
};
use spinstreams::xml::{topology_from_xml, topology_to_xml};
use std::collections::BTreeSet;

/// Strategy: a random rooted DAG in Algorithm 5's style, with service times
/// in a two-orders-of-magnitude band and random state classes.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (2usize..12, any::<u64>()).prop_map(|(v, seed)| {
        // Small deterministic generator (xorshift) from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut b = Topology::builder();
        for i in 0..v {
            let us = 50.0 + (next() % 5_000) as f64;
            let spec = match next() % 4 {
                0 => OperatorSpec::partitioned(
                    format!("op{i}"),
                    ServiceTime::from_micros(us),
                    KeyDistribution::zipf(8 + (next() % 32) as usize, 0.8),
                ),
                1 => OperatorSpec::stateful(format!("op{i}"), ServiceTime::from_micros(us)),
                _ => OperatorSpec::stateless(format!("op{i}"), ServiceTime::from_micros(us)),
            };
            b.add_operator(spec);
        }
        // Forward edges: each vertex i>0 gets an input from some j<i.
        let mut out_count = vec![0usize; v];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for i in 1..v {
            let j = (next() % i as u64) as usize;
            edges.push((j, i));
            out_count[j] += 1;
        }
        // A few extra forward edges.
        for _ in 0..v / 2 {
            let a = (next() % v as u64) as usize;
            let c = (next() % v as u64) as usize;
            if a < c && !edges.contains(&(a, c)) {
                edges.push((a, c));
                out_count[a] += 1;
            }
        }
        // Probabilities: uniform split per origin (sums to exactly 1).
        for (a, c) in edges {
            let share = 1.0 / out_count[a] as f64;
            // Adjust the last edge of each origin for rounding.
            b.add_edge(OperatorId(a), OperatorId(c), share).unwrap();
        }
        b.build().expect("forward-edge construction is a rooted DAG")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariant_3_1_holds(topo in arb_topology()) {
        let report = steady_state(&topo);
        for m in &report.metrics {
            prop_assert!(m.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn flow_conservation_holds(topo in arb_topology()) {
        // All generated selectivities are identity, so Proposition 3.5
        // applies exactly.
        let report = steady_state(&topo);
        let diff = (report.sink_departure_total.items_per_sec()
            - report.throughput.items_per_sec())
        .abs();
        prop_assert!(
            diff <= 1e-6 * report.throughput.items_per_sec().max(1.0),
            "sinks {} vs source {}",
            report.sink_departure_total.items_per_sec(),
            report.throughput.items_per_sec()
        );
    }

    #[test]
    fn visit_count_is_quadratically_bounded(topo in arb_topology()) {
        let report = steady_state(&topo);
        let n = topo.num_operators();
        prop_assert!(report.visits <= n * n + 2 * n);
    }

    #[test]
    fn fission_never_hurts_predicted_throughput(topo in arb_topology()) {
        let before = steady_state(&topo).throughput.items_per_sec();
        let plan = eliminate_bottlenecks(&topo);
        prop_assert!(
            plan.throughput.items_per_sec() >= before * (1.0 - 1e-9),
            "fission reduced throughput {before} -> {}",
            plan.throughput.items_per_sec()
        );
    }

    #[test]
    fn fission_plan_is_consistent_under_reevaluation(topo in arb_topology()) {
        let plan = eliminate_bottlenecks(&topo);
        let eval = evaluate_with_replicas(&topo, &plan.replicas);
        let a = plan.throughput.items_per_sec();
        let b = eval.throughput.items_per_sec();
        prop_assert!((a - b).abs() <= 1e-6 * a.max(1.0), "{a} vs {b}");
    }

    #[test]
    fn bounded_plans_respect_budget_and_never_beat_unbounded(topo in arb_topology()) {
        let plan = eliminate_bottlenecks(&topo);
        let n = topo.num_operators();
        for bound in [n, n + 3, plan.total_replicas()] {
            let degrees = apply_replica_bound(&plan, bound);
            prop_assert!(degrees.iter().sum::<usize>() <= bound.max(n));
            prop_assert!(degrees.iter().all(|d| *d >= 1));
            let bounded = evaluate_with_replicas(&topo, &degrees)
                .throughput
                .items_per_sec();
            prop_assert!(
                bounded <= plan.throughput.items_per_sec() * (1.0 + 1e-9),
                "bounded {bounded} beats unbounded {}",
                plan.throughput.items_per_sec()
            );
        }
    }

    #[test]
    fn stateless_only_topologies_always_reach_ideal(
        seed in any::<u64>(),
        v in 2usize..10,
    ) {
        // With every operator stateless, fission must remove every
        // bottleneck: predicted throughput equals the source rate
        // (pipelines keep the probability algebra trivial).
        let mut b = Topology::builder();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let ids: Vec<OperatorId> = (0..v)
            .map(|i| {
                let us = 50.0 + (next() % 2_000) as f64;
                b.add_operator(OperatorSpec::stateless(
                    format!("op{i}"),
                    ServiceTime::from_micros(us),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        let topo = b.build().unwrap();
        let plan = eliminate_bottlenecks(&topo);
        prop_assert!(plan.ideal());
        let source_rate = topo
            .operator(topo.source())
            .service_rate()
            .items_per_sec();
        prop_assert!(
            (plan.throughput.items_per_sec() - source_rate).abs()
                <= 1e-6 * source_rate
        );
    }

    #[test]
    fn fusion_service_time_matches_path_enumeration(topo in arb_topology()) {
        // Pick a contiguous suffix sub-graph rooted at some non-source
        // vertex with all inputs outside: use each vertex's full downstream
        // closure when it has a unique entry.
        let n = topo.num_operators();
        for front in 1..n {
            let front = OperatorId(front);
            // Downstream closure of `front`.
            let mut members: BTreeSet<OperatorId> = BTreeSet::new();
            let mut stack = vec![front];
            while let Some(x) = stack.pop() {
                if members.insert(x) {
                    stack.extend(topo.successors(x));
                }
            }
            // Only valid if every non-front member's inputs are internal.
            let valid = members.iter().all(|m| {
                *m == front
                    || topo.predecessors(*m).iter().all(|p| members.contains(p))
            });
            if !valid {
                continue;
            }
            let by_alg = fusion_service_time(&topo, &members, front).as_secs();
            // Definition 2: weighted path enumeration over exit paths.
            // Enumerate paths from front to each member that is a sink of
            // the sub-graph (no internal successors)... equivalently sum
            // over all paths to every member weighted by path probability
            // of the member's own service time contribution.
            let mut by_paths = 0.0;
            for m in &members {
                let paths = enumerate_paths(&topo, front, *m);
                let visit_mass: f64 = paths.iter().map(|p| p.probability).sum();
                by_paths += visit_mass * topo.operator(*m).service_time.as_secs();
            }
            prop_assert!(
                (by_alg - by_paths).abs() <= 1e-9 * by_alg.max(1e-12),
                "front {front}: recursive {by_alg} vs paths {by_paths}"
            );
        }
    }

    #[test]
    fn xml_roundtrip_is_lossless(topo in arb_topology()) {
        let xml = topology_to_xml(&topo, "prop");
        let back = topology_from_xml(&xml).unwrap();
        prop_assert_eq!(&topo, &back);
    }

    #[test]
    fn stateful_operators_never_get_replicas(topo in arb_topology()) {
        let plan = eliminate_bottlenecks(&topo);
        for id in topo.operator_ids() {
            if matches!(topo.operator(id).state, StateClass::Stateful) {
                prop_assert_eq!(plan.replicas[id.0], 1);
            }
        }
    }
}
