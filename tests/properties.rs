//! Property-based tests of the cost-model invariants over random
//! topologies.
//!
//! These check the paper's stated invariants on arbitrary rooted acyclic
//! flow graphs, not just hand-picked examples:
//!
//! * Invariant 3.1 — after Algorithm 1, every utilization is ≤ 1;
//! * Proposition 3.5 — flow conservation: total sink departure equals the
//!   source departure (identity selectivities);
//! * Proposition 3.4 — the number of vertex visits is O(|V|²);
//! * monotonicity — fission never predicts lower throughput;
//! * Definition 2 — `fusionRate` equals explicit path enumeration;
//! * idempotence of the steady state under its own departure rates.
//!
//! Cases are driven by a deterministic seeded generator rather than a
//! property-testing framework (the build environment is offline): every
//! failure message carries the case seed, so a failing case reproduces by
//! construction.

use spinstreams::analysis::{
    apply_replica_bound, eliminate_bottlenecks, evaluate_with_replicas, fusion_service_time,
    steady_state,
};
use spinstreams::core::{
    enumerate_paths, KeyDistribution, OperatorId, OperatorSpec, ServiceTime, StateClass, Topology,
};
use spinstreams::xml::{topology_from_xml, topology_to_xml};
use std::collections::BTreeSet;

/// Number of random cases per property (matches the prior proptest config).
const CASES: u64 = 128;

/// xorshift64* step, the same generator used throughout the workspace.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Runs `check` against `CASES` generated topologies.
fn for_each_topology(check: impl Fn(u64, &Topology)) {
    for case in 0..CASES {
        let seed = 0x5EED_0000_0000_0000 | (case.wrapping_mul(0x9E37_79B9) | 1);
        let topo = arb_topology(seed);
        check(seed, &topo);
    }
}

/// A random rooted DAG in Algorithm 5's style, with service times in a
/// two-orders-of-magnitude band and random state classes.
fn arb_topology(seed: u64) -> Topology {
    let mut state = seed | 1;
    let v = 2 + (next(&mut state) % 10) as usize;
    let mut b = Topology::builder();
    for i in 0..v {
        let us = 50.0 + (next(&mut state) % 5_000) as f64;
        let spec = match next(&mut state) % 4 {
            0 => OperatorSpec::partitioned(
                format!("op{i}"),
                ServiceTime::from_micros(us),
                KeyDistribution::zipf(8 + (next(&mut state) % 32) as usize, 0.8),
            ),
            1 => OperatorSpec::stateful(format!("op{i}"), ServiceTime::from_micros(us)),
            _ => OperatorSpec::stateless(format!("op{i}"), ServiceTime::from_micros(us)),
        };
        b.add_operator(spec);
    }
    // Forward edges: each vertex i>0 gets an input from some j<i.
    let mut out_count = vec![0usize; v];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 1..v {
        let j = (next(&mut state) % i as u64) as usize;
        edges.push((j, i));
        out_count[j] += 1;
    }
    // A few extra forward edges.
    for _ in 0..v / 2 {
        let a = (next(&mut state) % v as u64) as usize;
        let c = (next(&mut state) % v as u64) as usize;
        if a < c && !edges.contains(&(a, c)) {
            edges.push((a, c));
            out_count[a] += 1;
        }
    }
    // Probabilities: uniform split per origin (sums to exactly 1).
    for (a, c) in edges {
        let share = 1.0 / out_count[a] as f64;
        b.add_edge(OperatorId(a), OperatorId(c), share).unwrap();
    }
    b.build()
        .expect("forward-edge construction is a rooted DAG")
}

#[test]
fn invariant_3_1_holds() {
    for_each_topology(|seed, topo| {
        let report = steady_state(topo);
        for m in &report.metrics {
            assert!(
                m.utilization <= 1.0 + 1e-9,
                "seed {seed:#x}: ρ={}",
                m.utilization
            );
        }
    });
}

#[test]
fn flow_conservation_holds() {
    for_each_topology(|seed, topo| {
        // All generated selectivities are identity, so Proposition 3.5
        // applies exactly.
        let report = steady_state(topo);
        let diff =
            (report.sink_departure_total.items_per_sec() - report.throughput.items_per_sec()).abs();
        assert!(
            diff <= 1e-6 * report.throughput.items_per_sec().max(1.0),
            "seed {seed:#x}: sinks {} vs source {}",
            report.sink_departure_total.items_per_sec(),
            report.throughput.items_per_sec()
        );
    });
}

#[test]
fn visit_count_is_quadratically_bounded() {
    for_each_topology(|seed, topo| {
        let report = steady_state(topo);
        let n = topo.num_operators();
        assert!(
            report.visits <= n * n + 2 * n,
            "seed {seed:#x}: {} visits for {n} operators",
            report.visits
        );
    });
}

#[test]
fn fission_never_hurts_predicted_throughput() {
    for_each_topology(|seed, topo| {
        let before = steady_state(topo).throughput.items_per_sec();
        let plan = eliminate_bottlenecks(topo);
        assert!(
            plan.throughput.items_per_sec() >= before * (1.0 - 1e-9),
            "seed {seed:#x}: fission reduced throughput {before} -> {}",
            plan.throughput.items_per_sec()
        );
    });
}

#[test]
fn fission_plan_is_consistent_under_reevaluation() {
    for_each_topology(|seed, topo| {
        let plan = eliminate_bottlenecks(topo);
        let eval = evaluate_with_replicas(topo, &plan.replicas);
        let a = plan.throughput.items_per_sec();
        let b = eval.throughput.items_per_sec();
        assert!(
            (a - b).abs() <= 1e-6 * a.max(1.0),
            "seed {seed:#x}: {a} vs {b}"
        );
    });
}

#[test]
fn bounded_plans_respect_budget_and_never_beat_unbounded() {
    for_each_topology(|seed, topo| {
        let plan = eliminate_bottlenecks(topo);
        let n = topo.num_operators();
        for bound in [n, n + 3, plan.total_replicas()] {
            let degrees = apply_replica_bound(&plan, bound);
            assert!(
                degrees.iter().sum::<usize>() <= bound.max(n),
                "seed {seed:#x}"
            );
            assert!(degrees.iter().all(|d| *d >= 1), "seed {seed:#x}");
            let bounded = evaluate_with_replicas(topo, &degrees)
                .throughput
                .items_per_sec();
            assert!(
                bounded <= plan.throughput.items_per_sec() * (1.0 + 1e-9),
                "seed {seed:#x}: bounded {bounded} beats unbounded {}",
                plan.throughput.items_per_sec()
            );
        }
    });
}

#[test]
fn stateless_only_topologies_always_reach_ideal() {
    // With every operator stateless, fission must remove every bottleneck:
    // predicted throughput equals the source rate (pipelines keep the
    // probability algebra trivial).
    for case in 0..CASES {
        let seed = 0x1DEA_0000_0000_0000 | (case.wrapping_mul(0x94D0_49BB) | 1);
        let mut state = seed;
        let v = 2 + (next(&mut state) % 8) as usize;
        let mut b = Topology::builder();
        let ids: Vec<OperatorId> = (0..v)
            .map(|i| {
                let us = 50.0 + (next(&mut state) % 2_000) as f64;
                b.add_operator(OperatorSpec::stateless(
                    format!("op{i}"),
                    ServiceTime::from_micros(us),
                ))
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        let topo = b.build().unwrap();
        let plan = eliminate_bottlenecks(&topo);
        assert!(plan.ideal(), "seed {seed:#x}");
        let source_rate = topo.operator(topo.source()).service_rate().items_per_sec();
        assert!(
            (plan.throughput.items_per_sec() - source_rate).abs() <= 1e-6 * source_rate,
            "seed {seed:#x}: {} vs {source_rate}",
            plan.throughput.items_per_sec()
        );
    }
}

#[test]
fn fusion_service_time_matches_path_enumeration() {
    for_each_topology(|seed, topo| {
        // Pick a contiguous suffix sub-graph rooted at some non-source
        // vertex with all inputs outside: use each vertex's full downstream
        // closure when it has a unique entry.
        let n = topo.num_operators();
        for front in 1..n {
            let front = OperatorId(front);
            // Downstream closure of `front`.
            let mut members: BTreeSet<OperatorId> = BTreeSet::new();
            let mut stack = vec![front];
            while let Some(x) = stack.pop() {
                if members.insert(x) {
                    stack.extend(topo.successors(x));
                }
            }
            // Only valid if every non-front member's inputs are internal.
            let valid = members
                .iter()
                .all(|m| *m == front || topo.predecessors(*m).iter().all(|p| members.contains(p)));
            if !valid {
                continue;
            }
            let by_alg = fusion_service_time(topo, &members, front).as_secs();
            // Definition 2: weighted path enumeration — sum over all paths
            // to every member weighted by path probability of the member's
            // own service time contribution.
            let mut by_paths = 0.0;
            for m in &members {
                let paths = enumerate_paths(topo, front, *m);
                let visit_mass: f64 = paths.iter().map(|p| p.probability).sum();
                by_paths += visit_mass * topo.operator(*m).service_time.as_secs();
            }
            assert!(
                (by_alg - by_paths).abs() <= 1e-9 * by_alg.max(1e-12),
                "seed {seed:#x}: front {front}: recursive {by_alg} vs paths {by_paths}"
            );
        }
    });
}

#[test]
fn xml_roundtrip_is_lossless() {
    for_each_topology(|seed, topo| {
        let xml = topology_to_xml(topo, "prop");
        let back = topology_from_xml(&xml).unwrap();
        assert_eq!(topo, &back, "seed {seed:#x}");
    });
}

#[test]
fn stateful_operators_never_get_replicas() {
    for_each_topology(|seed, topo| {
        let plan = eliminate_bottlenecks(topo);
        for id in topo.operator_ids() {
            if matches!(topo.operator(id).state, StateClass::Stateful) {
                assert_eq!(plan.replicas[id.0], 1, "seed {seed:#x}: {id}");
            }
        }
    });
}
