//! End-to-end stateful recovery tests: a partitioned-stateful operator
//! killed mid-stream under epoch-aligned checkpointing must produce sink
//! output identical to an unfaulted run — same counts, same per-key
//! aggregate sequences — across batch sizes and both executors.

use spinstreams::core::{KeyDistribution, Tuple};
use spinstreams::operators::{Aggregation, WindowedAggregate};
use spinstreams::runtime::operators::{FaultConfig, FaultInjector, FnOperator};
use spinstreams::runtime::{
    run, ActorGraph, Backoff, Behavior, EngineConfig, ExecutorKind, Outputs, Route, SourceConfig,
    SupervisorSpec,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const ITEMS: u64 = 1_500;
const CHECKPOINT_EVERY: u64 = 200;
const CRASH_AT_TUPLE: u64 = 777;

type Captured = Arc<Mutex<Vec<Tuple>>>;

/// The timestamp-free projection of a captured tuple: `src_ns` is wall
/// time in the real engine and differs between otherwise identical runs.
fn project(captured: &Captured) -> Vec<(u64, u64, [f64; 4])> {
    captured
        .lock()
        .unwrap()
        .iter()
        .map(|t| (t.key, t.seq, t.values))
        .collect()
}

/// Per-key sequence of emitted aggregate values, in arrival order.
fn per_key(captured: &Captured) -> BTreeMap<u64, Vec<f64>> {
    let mut m: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for t in captured.lock().unwrap().iter() {
        m.entry(t.key).or_default().push(t.values[0]);
    }
    m
}

fn config(batch_size: usize, executor: ExecutorKind, checkpoint: Option<u64>) -> EngineConfig {
    EngineConfig {
        batch_size,
        executor,
        checkpoint_interval: checkpoint,
        mailbox_capacity: 64,
        send_timeout: Duration::from_secs(5),
        seed: 42,
        ..EngineConfig::default()
    }
}

/// Builds src -> keyed-sum -> capturing sink, optionally arming a
/// deterministic one-shot crash inside the aggregate, and runs it.
fn run_pipeline(
    cfg: &EngineConfig,
    crash_after: Option<u64>,
) -> (spinstreams::runtime::RunReport, Captured, ActorIdPair) {
    let store: Captured = Default::default();
    let mut g = ActorGraph::new();
    let src_cfg = SourceConfig::new(f64::INFINITY, ITEMS).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(src_cfg));
    let agg = WindowedAggregate::keyed(Aggregation::Sum, 6, 3, 0);
    let w = match crash_after {
        Some(n) => g.add_actor(
            "keyed-sum",
            Behavior::Worker(Box::new(FaultInjector::new(
                agg,
                FaultConfig::none().with_crash_after_tuples(n),
            ))),
        ),
        None => g.add_actor("keyed-sum", Behavior::Worker(Box::new(agg))),
    };
    let sink_store = store.clone();
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "capture",
            move |t: Tuple, _out: &mut Outputs| {
                sink_store.lock().unwrap().push(t);
            },
        ))),
    );
    g.connect(s, Route::Unicast(w));
    g.connect(w, Route::Unicast(k));
    g.set_supervision(w, SupervisorSpec::restart(4, Backoff::none()));
    let r = run(g, cfg).expect("run must complete");
    (r, store, ActorIdPair { worker: w, sink: k })
}

struct ActorIdPair {
    worker: spinstreams::runtime::ActorId,
    sink: spinstreams::runtime::ActorId,
}

#[test]
fn faulted_keyed_aggregate_matches_unfaulted_across_batches_and_executors() {
    // The golden output: checkpointing off, no faults, batch 1, threaded.
    // Every other variant — checkpointed, crashed, batched, pooled — must
    // reproduce it tuple for tuple.
    let (_, golden, _) = run_pipeline(&config(1, ExecutorKind::ThreadPerActor, None), None);
    let golden_seq = project(&golden);
    let golden_keys = per_key(&golden);
    assert!(
        golden_keys.len() >= 4,
        "keyed source must spread keys, got {}",
        golden_keys.len()
    );

    for executor in [
        ExecutorKind::ThreadPerActor,
        ExecutorKind::Pool { workers: 2 },
    ] {
        for batch in [1usize, 8, 64] {
            let label = format!("{executor:?} batch {batch}");
            let cfg = config(batch, executor, Some(CHECKPOINT_EVERY));

            // Checkpointing on, no fault: markers must not perturb the
            // data path.
            let (clean_r, clean, _) = run_pipeline(&cfg, None);
            assert_eq!(project(&clean), golden_seq, "clean {label}");
            assert_eq!(clean_r.dead_letters.total(), 0, "clean {label}");

            // Checkpointing on, crash mid-stream: recovery must restore
            // the per-key windows and replay the gap — exactly-once
            // delivery, zero dead letters, identical aggregates.
            let (r, faulted, ids) = run_pipeline(&cfg, Some(CRASH_AT_TUPLE));
            let a = r.actor(ids.worker);
            assert_eq!(a.panics, 1, "{label}");
            assert_eq!(a.restarts, 1, "{label}");
            assert_eq!(a.recoveries, 1, "{label}");
            assert!(a.replayed > 0, "{label}");
            assert_eq!(
                a.last_restored_epoch,
                Some((CRASH_AT_TUPLE - 1) / CHECKPOINT_EVERY),
                "{label}"
            );
            assert_eq!(r.dead_letters.total(), 0, "{label}");
            assert!(
                r.last_complete_epoch >= Some(ITEMS / CHECKPOINT_EVERY),
                "{label}"
            );
            assert_eq!(
                r.actor(ids.sink).items_in as usize,
                golden_seq.len(),
                "{label}"
            );
            assert_eq!(project(&faulted), golden_seq, "faulted {label}");
            assert_eq!(per_key(&faulted), golden_keys, "faulted {label}");
        }
    }
}

#[test]
fn crash_without_checkpointing_loses_window_state() {
    // The negative control: the same crash with checkpointing off falls
    // back to reset-to-empty semantics — the poisoned tuple dead-letters
    // and the per-key windows restart cold, so the output diverges. This
    // pins that the equivalence above is earned by recovery, not by the
    // operator being accidentally stateless.
    let (_, golden, _) = run_pipeline(&config(1, ExecutorKind::ThreadPerActor, None), None);
    let cfg = config(1, ExecutorKind::ThreadPerActor, None);
    let (r, faulted, ids) = run_pipeline(&cfg, Some(CRASH_AT_TUPLE));
    let a = r.actor(ids.worker);
    assert_eq!(a.panics, 1);
    assert_eq!(a.restarts, 1);
    assert_eq!(a.recoveries, 0);
    assert_eq!(a.last_restored_epoch, None);
    assert_eq!(r.dead_letters.total(), 1);
    assert_ne!(project(&faulted), project(&golden));
}
