//! End-to-end tests of the telemetry layer: deterministic JSON-lines
//! export under the discrete-event executor, and bounded sampler overhead
//! under the threaded executor.

use spinstreams::analysis::DriftConfig;
use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::{Executor, SimConfig, TelemetryConfig};
use spinstreams::tool::predict_vs_measure_telemetry;
use std::time::Duration;

fn pipeline() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 400_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    b.build().unwrap()
}

fn sim(seed: u64) -> Executor {
    Executor::VirtualTime(SimConfig {
        mailbox_capacity: 32,
        seed,
        // Pure virtual time: service costs come from the specs alone, so
        // two runs with the same seed take identical trajectories.
        intrinsic_time: false,
        ..SimConfig::default()
    })
}

/// The full export pipeline — snapshots, rolling rates, latency
/// quantiles, drift verdicts, trace events — is a pure function of the
/// topology and the seed under the discrete-event executor: two runs
/// produce byte-identical JSON-lines.
#[test]
fn jsonl_export_is_byte_identical_across_identical_sim_runs() {
    let topo = pipeline();
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(100));
    let drift = DriftConfig::default();
    let a = predict_vs_measure_telemetry(&topo, 6_000, &sim(0xBEEF), &tcfg, drift).unwrap();
    let b = predict_vs_measure_telemetry(&topo, 6_000, &sim(0xBEEF), &tcfg, drift).unwrap();
    assert!(!a.export.jsonl.is_empty());
    assert!(a.export.snapshot_lines >= 5, "virtual clock must tick");
    assert_eq!(
        a.export.jsonl, b.export.jsonl,
        "same seed, same topology: export must be byte-identical"
    );
    // A different seed still samples on the same virtual-clock
    // boundaries, producing the same number of snapshot records.
    let c = predict_vs_measure_telemetry(&topo, 6_000, &sim(0x5EED), &tcfg, drift).unwrap();
    assert_eq!(a.export.snapshot_lines, c.export.snapshot_lines);
}

/// Every snapshot line carries the full schema the README documents:
/// rolling rates, queue occupancy, latency quantiles and drift verdicts.
#[test]
fn snapshot_lines_carry_rates_queues_latency_and_drift() {
    let topo = pipeline();
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(100));
    let run =
        predict_vs_measure_telemetry(&topo, 6_000, &sim(1), &tcfg, DriftConfig::default()).unwrap();
    let snapshots: Vec<&str> = run
        .export
        .jsonl
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"snapshot\""))
        .collect();
    assert!(snapshots.len() >= 5);
    for line in &snapshots {
        for field in [
            "\"tick\":",
            "\"t_ns\":",
            "\"interval_ns\":",
            "\"arrival_rate\":",
            "\"departure_rate\":",
            "\"utilization\":",
            "\"queue_depth\":",
            "\"busy_ns\":",
            "\"blocked_ns\":",
            "\"inbox_stall_ns\":",
            "\"snapshots\":",
            "\"snapshot_bytes\":",
            "\"align_stall_ns\":",
            "\"recoveries\":",
            "\"replayed\":",
            "\"replay_overflows\":",
            "\"last_complete_epoch\":",
            "\"latency\":[",
            "\"drift\":[",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    // The sink observed end-to-end latency for (nearly) every item.
    let last = run.telemetry.last_snapshot().unwrap();
    let lat = &last.latencies[0].latency;
    assert!(lat.count > 5_000, "latency samples: {}", lat.count);
    assert!(lat.p50_ns > 0 && lat.p99_ns >= lat.p50_ns && lat.max_ns >= lat.p99_ns);
    // Trace lines follow the snapshots.
    assert!(run.export.jsonl.contains("{\"type\":\"trace\""));
}

/// The threaded sampler flushes one final sample after EOS/drain: the
/// last snapshot's cumulative counters equal the run report's totals,
/// however the run length and sampling interval line up. (Before the fix
/// the sampler thread could be joined mid-window, leaving the tail of the
/// run invisible to every exporter.)
#[test]
fn threaded_sampler_emits_final_sample_with_complete_counters() {
    use spinstreams::codegen::{build_actor_graph, CodegenOptions};
    use spinstreams::runtime::{run_with_telemetry, EngineConfig};

    let topo = pipeline();
    let items = 1_000;
    let plan = build_actor_graph(
        &topo,
        None,
        &[],
        &[],
        &CodegenOptions {
            items,
            seed: 7,
            ..CodegenOptions::default()
        },
    )
    .unwrap();
    // An interval far longer than the run: without the final flush the
    // export would have no snapshot at all, let alone a complete one.
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_secs(3600));
    let (report, telemetry) =
        run_with_telemetry(plan.graph, &EngineConfig::default(), &tcfg).unwrap();
    let last = telemetry.last_snapshot().expect("final sample after drain");
    for actor in &last.actors {
        let finished = report.actor(actor.id);
        assert_eq!(
            (actor.items_in, actor.items_out),
            (finished.items_in, finished.items_out),
            "final sample must carry {}'s final counters",
            actor.name
        );
    }
    assert_eq!(last.actors[0].items_out, items, "source drained fully");
}

/// The threaded sampler must not tax the pipeline it observes: with the
/// pipeline paced by its 400 µs spin bottleneck, enabling a 10 ms sampler
/// may not cut measured source throughput by more than 5%.
#[test]
fn threaded_sampler_overhead_is_bounded() {
    use spinstreams::codegen::{build_actor_graph, CodegenOptions};
    use spinstreams::runtime::{run, run_with_telemetry, EngineConfig};

    let topo = pipeline();
    let items = 2_000;
    let opts = CodegenOptions {
        items,
        seed: 42,
        ..CodegenOptions::default()
    };
    let engine = EngineConfig::default();
    // Best-of-three on each side to shake scheduler noise out of the
    // comparison; the source paces both runs at the same rate.
    let base = (0..3)
        .map(|_| {
            let plan = build_actor_graph(&topo, None, &[], &[], &opts).unwrap();
            let report = run(plan.graph, &engine).unwrap();
            report.source_throughput().unwrap()
        })
        .fold(0.0f64, f64::max);
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(10));
    let sampled = (0..3)
        .map(|_| {
            let plan = build_actor_graph(&topo, None, &[], &[], &opts).unwrap();
            let (report, telemetry) = run_with_telemetry(plan.graph, &engine, &tcfg).unwrap();
            assert!(!telemetry.snapshots.is_empty());
            report.source_throughput().unwrap()
        })
        .fold(0.0f64, f64::max);
    assert!(
        sampled >= base * 0.95,
        "sampler overhead exceeds 5%: {base:.0} items/s without vs {sampled:.0} with telemetry"
    );
}
