//! End-to-end test of the §3.1 fictitious-source transform: a two-source
//! application is rewritten to the rooted form, analyzed, deployed and
//! executed, and the model tracks the measurement.

use spinstreams::analysis::{merge_sources, steady_state, MultiSourceSpec};
use spinstreams::core::{OperatorSpec, ServiceTime};
use spinstreams::runtime::Executor;
use spinstreams::runtime::SimConfig;
use spinstreams::tool::predict_vs_measure;

mod multi_source_throughput {
    use spinstreams::runtime::operators::PassThrough;
    use spinstreams::runtime::{simulate, ActorGraph, Behavior, Route, SimConfig, SourceConfig};

    /// Regression test: `RunReport::source_throughput` must sum over ALL
    /// source actors, not just the first. Two independent 2 kHz / 1 kHz
    /// sources feed one cheap union stage; the aggregate source rate is
    /// 3 kHz.
    #[test]
    fn source_throughput_sums_every_source_actor() {
        let mut g = ActorGraph::new();
        let fast = g.add_actor("fast", Behavior::Source(SourceConfig::new(2_000.0, 4_000)));
        let slow = g.add_actor("slow", Behavior::Source(SourceConfig::new(1_000.0, 2_000)));
        let sink = g.add_actor("union", Behavior::worker(PassThrough));
        g.connect(fast, Route::Unicast(sink));
        g.connect(slow, Route::Unicast(sink));
        let report = simulate(
            g,
            &SimConfig {
                mailbox_capacity: 64,
                seed: 0xA11,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let measured = report.source_throughput().expect("measurable sources");
        assert!(
            (measured - 3_000.0).abs() / 3_000.0 < 0.05,
            "aggregate source throughput {measured} items/s, expected ~3000"
        );
        // Regression guard: summing (not first-source-wins) means the
        // aggregate strictly exceeds the faster source alone.
        assert!(measured > 2_100.0);
    }
}

#[test]
fn merged_two_source_application_runs_and_matches_the_model() {
    // Two feeds (6 kHz and 3 kHz) converge on a 0.2 ms merge stage
    // (capacity 5 kHz < 9 kHz aggregate -> backpressure) and a cheap sink.
    let mut spec = MultiSourceSpec::new();
    let fast = spec.add_operator(
        OperatorSpec::source("feed-fast", ServiceTime::from_micros(166.67))
            .with_kind("identity-map")
            .with_param("work_ns", 0.0),
    );
    let slow = spec.add_operator(
        OperatorSpec::source("feed-slow", ServiceTime::from_micros(333.33))
            .with_kind("identity-map")
            .with_param("work_ns", 0.0),
    );
    let merge = spec.add_operator(
        OperatorSpec::stateless("merge", ServiceTime::from_micros(200.0))
            .with_kind("identity-map")
            .with_param("work_ns", 200_000.0),
    );
    let sink = spec.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    spec.add_edge(fast, merge, 1.0);
    spec.add_edge(slow, merge, 1.0);
    spec.add_edge(merge, sink, 1.0);

    let topo = merge_sources(&spec).unwrap();
    // A fictitious source was appended and runnable kinds survive; give it
    // a kind so codegen accepts the topology (the real sources became
    // pass-through stages).
    let mut b = topo.to_builder();
    b.operator_mut(topo.source()).kind = "source".into();
    let topo = b.build().unwrap();

    let report = steady_state(&topo);
    // Aggregate demand 9 kHz vs merge capacity 5 kHz: the model throttles
    // the fictitious source to 5 kHz.
    assert!(
        (report.throughput.items_per_sec() - 5_000.0).abs() < 5.0,
        "predicted {}",
        report.throughput.items_per_sec()
    );
    // Backpressure splits proportionally to the feed rates (2:1).
    assert!((report.metric(fast).departure - 10_000.0 / 3.0).abs() < 5.0);
    assert!((report.metric(slow).departure - 5_000.0 / 3.0).abs() < 5.0);

    // Execute the merged topology and compare.
    let executor = Executor::VirtualTime(SimConfig {
        mailbox_capacity: 32,
        seed: 0x2517,
        ..SimConfig::default()
    });
    let cmp = predict_vs_measure(&topo, None, &[], &[], 40_000, &executor).unwrap();
    assert!(
        cmp.relative_error() < 0.05,
        "predicted {} measured {}",
        cmp.predicted_throughput,
        cmp.measured_throughput
    );
}
