//! End-to-end adaptive re-optimization tests: a sustained mid-run
//! service-time shift must trigger a live plan migration — route swap on an
//! epoch barrier, no stream stop — across batch sizes and both executors,
//! with exactly-once sink delivery throughout; a clean run must never
//! migrate; and a migration racing a supervised crash/restart must still
//! deliver every tuple.

use spinstreams::analysis::{AdaptiveConfig, DriftConfig};
use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
use spinstreams::tool::{run_adaptation_layer, run_adaptive, AdaptiveRunConfig, OperatorFault};
use std::time::Duration;

const ITEMS: u64 = 10_000;

/// src → worker → sink, calibrated to fit well under one core (CI boxes
/// may have a single CPU): a 4 k/s paced source and 50 µs + 25 µs of spin
/// work per item keep measured busy times close to the declarations, so
/// only the injected fault crosses the drift threshold.
fn pipeline() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(250.0)).with_kind("source"),
    );
    let w = b.add_operator(
        OperatorSpec::stateless("worker", ServiceTime::from_micros(50.0))
            .with_kind("identity-map")
            .with_param("work_ns", 50_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(25.0))
            .with_kind("identity-map")
            .with_param("work_ns", 25_000.0),
    );
    b.add_edge(s, w, 1.0).unwrap();
    b.add_edge(w, k, 1.0).unwrap();
    b.build().unwrap()
}

fn config(batch: usize, workers: Option<usize>) -> AdaptiveRunConfig {
    AdaptiveRunConfig {
        items: ITEMS,
        seed: 11,
        batch_size: batch,
        workers,
        controller: AdaptiveConfig {
            drift: DriftConfig {
                threshold: 0.5,
                warmup_ticks: 2,
                consecutive: 2,
            },
            cooldown_ticks: 3,
            hysteresis: 0.05,
            max_replicas: 6,
            min_samples: 100,
        },
        checkpoint_interval: 500,
        telemetry_interval: Duration::from_millis(20),
        ..AdaptiveRunConfig::default()
    }
}

/// The worker slows ~7× a fifth of the way through the stream.
fn slowdown() -> OperatorFault {
    OperatorFault {
        operator: "worker".into(),
        slow_after: Some((2_000, 300_000)),
        ..OperatorFault::default()
    }
}

fn assert_migrated_exactly_once(cfg: &AdaptiveRunConfig, label: &str) {
    let outcome = run_adaptive(&pipeline(), None, cfg).unwrap();
    assert!(
        !outcome.changes.is_empty(),
        "{label}: sustained drift must re-plan (ticks={}, rebases={})",
        outcome.ticks,
        outcome.rebases,
    );
    assert!(
        outcome.final_replicas[1] > 1,
        "{label}: worker must scale out, got {:?}",
        outcome.final_replicas
    );
    assert!(
        outcome.swaps_applied >= 1,
        "{label}: the route swap must apply on a live epoch barrier"
    );
    // Exactly-once across the migration: nothing lost, nothing duplicated.
    assert_eq!(outcome.sink_arrivals, cfg.items, "{label}: sink arrivals");
    assert_eq!(outcome.run.total_dead_letters(), 0, "{label}: dead letters");
}

#[test]
fn migration_fires_across_batch_sizes_thread_per_actor() {
    for batch in [1usize, 8, 64] {
        let cfg = AdaptiveRunConfig {
            faults: vec![slowdown()],
            ..config(batch, None)
        };
        assert_migrated_exactly_once(&cfg, &format!("thread-per-actor, batch {batch}"));
    }
}

#[test]
fn migration_fires_across_batch_sizes_pool() {
    for batch in [1usize, 8, 64] {
        let cfg = AdaptiveRunConfig {
            faults: vec![slowdown()],
            ..config(batch, Some(2))
        };
        assert_migrated_exactly_once(&cfg, &format!("pool(2), batch {batch}"));
    }
}

#[test]
fn migration_survives_a_racing_supervised_restart() {
    // The worker both slows (drift → migration) and panics shortly after
    // the shift, so the supervised restart and the route swap race around
    // the same epochs. Recovery replays from the last checkpoint; the
    // migration must still complete and the sink must see every tuple
    // exactly once.
    let cfg = AdaptiveRunConfig {
        faults: vec![OperatorFault {
            operator: "worker".into(),
            slow_after: Some((2_000, 300_000)),
            crash_after_tuples: Some(2_600),
        }],
        ..config(8, None)
    };
    let outcome = run_adaptive(&pipeline(), None, &cfg).unwrap();
    assert!(
        outcome.run.total_recoveries() >= 1,
        "the crash must actually restart the worker"
    );
    assert!(
        !outcome.changes.is_empty(),
        "drift must still re-plan (ticks={}, rebases={})",
        outcome.ticks,
        outcome.rebases,
    );
    assert!(outcome.swaps_applied >= 1);
    assert_eq!(outcome.sink_arrivals, cfg.items);
    assert_eq!(outcome.run.total_dead_letters(), 0);
}

#[test]
fn clean_run_keeps_the_static_plan() {
    let cfg = config(8, None);
    let outcome = run_adaptive(&pipeline(), None, &cfg).unwrap();
    assert!(outcome.ticks > 0, "controller must tick");
    assert!(
        outcome.changes.is_empty(),
        "no drift, no migration; got {:?}",
        outcome
            .changes
            .iter()
            .map(|c| (c.stale.clone(), c.old_replicas.clone(), c.replicas.clone()))
            .collect::<Vec<_>>()
    );
    assert_eq!(outcome.swaps_posted, 0);
    assert_eq!(outcome.final_replicas, outcome.initial_replicas);
    assert_eq!(outcome.sink_arrivals, cfg.items);
}

#[test]
fn adaptation_layer_is_clean_on_the_ci_seed() {
    // The full differential check behind `spinstreams oracle
    // --adaptation-seeds`: golden vs shifted run, byte-identical per-key
    // sink output, post-migration throughput within the drift threshold
    // of the new plan's Algorithm 1 prediction.
    let report = run_adaptation_layer(1).unwrap();
    assert!(report.is_clean(), "divergences: {:?}", report.divergences);
}
