//! Fused-chain equivalence tests: a fusion group compiled to the
//! monomorphized [`FusedChain`] must be observably identical to the same
//! group run through the interpreted `MetaOperator` — same per-operator
//! counts, same per-key tuple sequences, byte-identical virtual-time
//! telemetry — across batch sizes and both executors. A crash mid-stream
//! must also recover identically under either representation.
//!
//! [`FusedChain`]: spinstreams::runtime::FusedChain

use spinstreams::codegen::{build_actor_graph, CodegenOptions, FusionGroup, FusionStrategy};
use spinstreams::core::{KeyDistribution, OperatorSpec, ServiceTime, Topology, Tuple};
use spinstreams::operators::{build_kernel, build_operator, OperatorKind, OperatorParams};
use spinstreams::runtime::operators::{FaultConfig, FaultInjector, FnOperator};
use spinstreams::runtime::{
    execute, run, simulate_with_telemetry, ActorGraph, Backoff, Behavior, EngineConfig, Executor,
    ExecutorKind, FusedChain, MetaDest, MetaOperator, MetaRoute, Outputs, Route, SimConfig,
    SourceConfig, StreamOperator, SupervisorSpec, TelemetryConfig, DEFAULT_PORT,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Executors under test: the thread-per-actor baseline and a pool small
/// enough to multiplex several actors per worker.
const EXECUTORS: [ExecutorKind; 2] = [
    ExecutorKind::ThreadPerActor,
    ExecutorKind::Pool { workers: 2 },
];

const BATCHES: [usize; 3] = [1, 8, 64];

// ---------------------------------------------------------------------------
// Codegen-level equivalence: same topology, same fusion group, deployed
// once per strategy; per-operator logical counts must agree exactly.
// ---------------------------------------------------------------------------

/// src -> identity-map -> filter -> enricher -> sink with the three middle
/// operators fused. The filter gives the chain a data-dependent drop so
/// count equality is not vacuous.
fn chain_topology() -> (Topology, FusionGroup) {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(1.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("map", ServiceTime::from_micros(1.0)).with_kind("identity-map"),
    );
    let f = b.add_operator(
        OperatorSpec::stateless("filter", ServiceTime::from_micros(1.0))
            .with_kind("filter")
            .with_param("threshold", 0.6),
    );
    let e = b.add_operator(
        OperatorSpec::stateless("enrich", ServiceTime::from_micros(1.0)).with_kind("enricher"),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(1.0)).with_kind("identity-map"),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, f, 1.0).unwrap();
    b.add_edge(f, e, 1.0).unwrap();
    b.add_edge(e, k, 1.0).unwrap();
    let topo = b.build().unwrap();
    let group = FusionGroup {
        members: [m, f, e].into_iter().collect(),
        front: m,
    };
    (topo, group)
}

/// Deploys the chain topology under `strategy` and returns the logical
/// per-operator (items_in, items_out) table plus the drop total.
fn deploy_counts(
    strategy: FusionStrategy,
    batch_size: usize,
    executor: ExecutorKind,
) -> (Vec<(u64, u64)>, u64) {
    let (topo, group) = chain_topology();
    let opts = CodegenOptions {
        items: 4_000,
        seed: 0xF00D,
        fusion: strategy,
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(
        &topo,
        Some(KeyDistribution::uniform(8)),
        &[],
        &[group],
        &opts,
    )
    .unwrap();
    let cfg = EngineConfig {
        batch_size,
        executor,
        mailbox_capacity: 64,
        seed: 42,
        ..EngineConfig::default()
    };
    let report = execute(plan.graph, &Executor::Threads(cfg)).unwrap();
    let table = topo
        .operator_ids()
        .map(|id| {
            (
                report.actor(plan.input_actor[id.0]).items_in,
                report.actor(plan.departure_actor[id.0]).items_out,
            )
        })
        .collect();
    (table, report.total_dropped())
}

#[test]
fn monomorphized_deployment_counts_match_interpreted() {
    for executor in EXECUTORS {
        for batch in BATCHES {
            let label = format!("{executor:?} batch {batch}");
            let (mono, mono_dropped) = deploy_counts(FusionStrategy::Monomorphize, batch, executor);
            let (interp, interp_dropped) =
                deploy_counts(FusionStrategy::Interpret, batch, executor);
            assert_eq!(mono_dropped, 0, "{label}: fused run must not drop");
            assert_eq!(interp_dropped, 0, "{label}: interpreted run must not drop");
            assert_eq!(
                mono, interp,
                "{label}: per-operator counts must be strategy-independent"
            );
            // The filter actually filters — the chain's output is a strict
            // subset of its input, so the equality above is earned.
            let (filter_in, filter_out) = mono[2];
            assert!(
                filter_out < filter_in,
                "{label}: filter must drop some items ({filter_in} in, {filter_out} out)"
            );
        }
    }
}

#[test]
fn monomorphized_sim_telemetry_is_byte_identical_to_interpreted() {
    // The discrete-event executor is a pure function of graph and seed, so
    // if the fused chain really is the meta-operator with the dispatch
    // compiled out, the whole telemetry export — counts, rates, latency
    // histograms — must match byte for byte.
    for batch in BATCHES {
        let export = |strategy: FusionStrategy| {
            let (topo, group) = chain_topology();
            let opts = CodegenOptions {
                items: 4_000,
                seed: 0xF00D,
                fusion: strategy,
                ..CodegenOptions::default()
            };
            let plan = build_actor_graph(
                &topo,
                Some(KeyDistribution::uniform(8)),
                &[],
                &[group],
                &opts,
            )
            .unwrap();
            let sim = SimConfig {
                mailbox_capacity: 32,
                seed: 0xBA7C4,
                intrinsic_time: false,
                batch_size: batch,
                checkpoint_interval: None,
            };
            let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(1));
            let (report, tel) = simulate_with_telemetry(plan.graph, &sim, &tcfg).unwrap();
            assert_eq!(report.total_dropped(), 0, "batch {batch}");
            tel.to_jsonl()
        };
        let mono = export(FusionStrategy::Monomorphize);
        assert!(!mono.is_empty(), "batch {batch}: telemetry must export");
        assert_eq!(
            export(FusionStrategy::Interpret),
            mono,
            "batch {batch}: sim telemetry must be byte-identical across strategies"
        );
    }
}

// ---------------------------------------------------------------------------
// Operator-level equivalence: hand-built chains (pass + drop + multiply)
// compared tuple for tuple through a recording sink.
// ---------------------------------------------------------------------------

/// The stage parameters shared by both representations.
fn stage_params() -> OperatorParams {
    OperatorParams {
        work_ns: 0,
        threshold: 0.6,
        fanout: 2,
        ..Default::default()
    }
}

/// identity-map -> filter -> flat-map as a monomorphized chain.
fn fused_worker() -> Box<dyn StreamOperator> {
    let p = stage_params();
    let kernels = [
        OperatorKind::IdentityMap,
        OperatorKind::Filter,
        OperatorKind::FlatMap,
    ]
    .into_iter()
    .map(|kind| build_kernel(kind, &p).expect("stateless kinds have kernels"))
    .collect();
    Box::new(FusedChain::new("fused", kernels, DEFAULT_PORT))
}

/// The same three stages behind the interpreted meta-operator with a
/// linear unicast route table.
fn interpreted_worker() -> Box<dyn StreamOperator> {
    let p = stage_params();
    let members: Vec<Box<dyn StreamOperator>> = vec![
        build_operator(OperatorKind::IdentityMap, &p),
        build_operator(OperatorKind::Filter, &p),
        build_operator(OperatorKind::FlatMap, &p),
    ];
    let routes = vec![
        vec![MetaRoute::Unicast(MetaDest::Member(1))],
        vec![MetaRoute::Unicast(MetaDest::Member(2))],
        vec![MetaRoute::Unicast(MetaDest::Output(DEFAULT_PORT))],
    ];
    Box::new(MetaOperator::new("fused", members, routes, 0, 7))
}

type Captured = Arc<Mutex<Vec<(u64, u64, [f64; 4])>>>;

/// Per-key (seq, values) sequences in arrival order — the executor-stable
/// projection of the sink's capture.
fn per_key(captured: &Captured) -> BTreeMap<u64, Vec<(u64, [f64; 4])>> {
    let mut m: BTreeMap<u64, Vec<(u64, [f64; 4])>> = BTreeMap::new();
    for &(key, seq, values) in captured.lock().unwrap().iter() {
        m.entry(key).or_default().push((seq, values));
    }
    m
}

/// src -> worker -> capturing sink.
fn run_chain(
    worker: Box<dyn StreamOperator>,
    batch_size: usize,
    executor: ExecutorKind,
    items: u64,
) -> BTreeMap<u64, Vec<(u64, [f64; 4])>> {
    let store: Captured = Default::default();
    let mut g = ActorGraph::new();
    let cfg = SourceConfig::new(f64::INFINITY, items).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(cfg));
    let w = g.add_actor("chain", Behavior::Worker(worker));
    let sink_store = store.clone();
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "capture",
            move |t: Tuple, _out: &mut Outputs| {
                sink_store.lock().unwrap().push((t.key, t.seq, t.values));
            },
        ))),
    );
    g.connect(s, Route::Unicast(w));
    g.connect(w, Route::Unicast(k));
    let cfg = EngineConfig {
        batch_size,
        executor,
        mailbox_capacity: 64,
        seed: 42,
        ..EngineConfig::default()
    };
    let report = run(g, &cfg).unwrap();
    assert_eq!(report.total_dropped(), 0);
    assert_eq!(report.dead_letters.total(), 0);
    per_key(&store)
}

#[test]
fn fused_chain_emits_the_same_tuples_as_the_meta_operator() {
    const ITEMS: u64 = 3_000;
    let golden = run_chain(fused_worker(), 1, ExecutorKind::ThreadPerActor, ITEMS);
    assert!(
        golden.len() >= 4,
        "keyed source must spread keys, got {}",
        golden.len()
    );
    let total: usize = golden.values().map(Vec::len).sum();
    assert!(
        total > 0 && total != ITEMS as usize,
        "filter+flat-map must reshape the stream (got {total} of {ITEMS})"
    );
    for executor in EXECUTORS {
        for batch in BATCHES {
            let label = format!("{executor:?} batch {batch}");
            assert_eq!(
                run_chain(fused_worker(), batch, executor, ITEMS),
                golden,
                "fused {label}"
            );
            assert_eq!(
                run_chain(interpreted_worker(), batch, executor, ITEMS),
                golden,
                "interpreted {label}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery: a crash inside the fused stage must recover to the unfaulted
// output under both representations (the meta-operator checkpoints its
// internal state; the chain is stateless and replays cold).
// ---------------------------------------------------------------------------

const RECOVERY_ITEMS: u64 = 1_500;
const CHECKPOINT_EVERY: u64 = 200;
const CRASH_AT_TUPLE: u64 = 777;

struct RecoveryRun {
    report: spinstreams::runtime::RunReport,
    worker: spinstreams::runtime::ActorId,
    output: BTreeMap<u64, Vec<(u64, [f64; 4])>>,
}

fn run_recovery(worker: Box<dyn StreamOperator>, crash: bool) -> RecoveryRun {
    let store: Captured = Default::default();
    let mut g = ActorGraph::new();
    let cfg =
        SourceConfig::new(f64::INFINITY, RECOVERY_ITEMS).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(cfg));
    let worker: Box<dyn StreamOperator> = if crash {
        Box::new(FaultInjector::new(
            worker,
            FaultConfig::none().with_crash_after_tuples(CRASH_AT_TUPLE),
        ))
    } else {
        worker
    };
    let w = g.add_actor("chain", Behavior::Worker(worker));
    let sink_store = store.clone();
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "capture",
            move |t: Tuple, _out: &mut Outputs| {
                sink_store.lock().unwrap().push((t.key, t.seq, t.values));
            },
        ))),
    );
    g.connect(s, Route::Unicast(w));
    g.connect(w, Route::Unicast(k));
    g.set_supervision(w, SupervisorSpec::restart(4, Backoff::none()));
    let cfg = EngineConfig {
        batch_size: 8,
        executor: ExecutorKind::ThreadPerActor,
        checkpoint_interval: Some(CHECKPOINT_EVERY),
        mailbox_capacity: 64,
        send_timeout: Duration::from_secs(5),
        seed: 42,
        ..EngineConfig::default()
    };
    let report = run(g, &cfg).unwrap();
    RecoveryRun {
        report,
        worker: w,
        output: per_key(&store),
    }
}

#[test]
fn crashed_fused_stage_recovers_to_the_unfaulted_output() {
    for (label, make) in [
        ("fused", fused_worker as fn() -> Box<dyn StreamOperator>),
        ("interpreted", interpreted_worker),
    ] {
        let golden = run_recovery(make(), false);
        assert_eq!(golden.report.dead_letters.total(), 0, "{label} golden");

        let faulted = run_recovery(make(), true);
        let a = faulted.report.actor(faulted.worker);
        assert_eq!(a.panics, 1, "{label}");
        assert_eq!(a.restarts, 1, "{label}");
        assert!(a.replayed > 0, "{label}: the epoch gap must be replayed");
        assert_eq!(faulted.report.dead_letters.total(), 0, "{label}");
        assert_eq!(
            faulted.output, golden.output,
            "{label}: recovered output must match the unfaulted run"
        );
    }
}

#[test]
fn interpreted_recovery_restores_the_meta_snapshot() {
    // The meta-operator checkpoints (rng + member state), so its recovery
    // must report a restored epoch — pinning that the equivalence above
    // exercises the snapshot path, not just cold replay.
    let faulted = run_recovery(interpreted_worker(), true);
    let a = faulted.report.actor(faulted.worker);
    assert_eq!(a.recoveries, 1);
    assert_eq!(
        a.last_restored_epoch,
        Some((CRASH_AT_TUPLE - 1) / CHECKPOINT_EVERY)
    );
}
