//! End-to-end tests of the observability layer: byte-deterministic span
//! exports under the discrete-event executor, tracing on/off semantic
//! equivalence on both executors, and the online re-profiler validated
//! against the oracle's offline §4.1 profiler over seeded topologies.

use spinstreams::analysis::{attribute, steady_state, AnnotationKind, Reprofiler};
use spinstreams::codegen::{build_actor_graph, CodegenOptions};
use spinstreams::core::{KeyDistribution, OperatorSpec, ServiceTime, Topology};
use spinstreams::oracle::{
    annotate, measure, run_scenario, sim_executor, OracleConfig, Tolerances,
};
use spinstreams::runtime::operators::{FnOperator, PassThrough};
use spinstreams::runtime::{
    assemble_spans, execute, execute_with_telemetry, ActorGraph, Behavior, EngineConfig, Executor,
    Outputs, Route, SimConfig, SourceConfig, TelemetryConfig,
};
use spinstreams::tool::{observed_operators, operator_counters};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn pipeline() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 400_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    b.build().unwrap()
}

/// The flight recorder is a pure function of topology and seed under the
/// discrete-event executor: at every envelope batch size, two identical
/// runs export byte-identical JSON-lines (snapshots *and* span trace
/// events), and virtual time makes the export independent of batching.
#[test]
fn span_export_is_byte_identical_across_sim_runs_at_every_batch_size() {
    let topo = pipeline();
    let tcfg = TelemetryConfig::default()
        .with_interval(Duration::from_millis(100))
        .with_span_sample(8);
    let run_once = |batch: usize| {
        let plan = build_actor_graph(
            &topo,
            None,
            &[],
            &[],
            &CodegenOptions {
                items: 6_000,
                seed: 0xBEEF,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let executor = Executor::VirtualTime(SimConfig {
            mailbox_capacity: 32,
            seed: 0xBEEF,
            intrinsic_time: false,
            batch_size: batch,
            ..SimConfig::default()
        });
        let (_, telemetry) = execute_with_telemetry(plan.graph, &executor, &tcfg).unwrap();
        telemetry
    };
    let mut exports = Vec::new();
    for batch in [1, 8, 64] {
        let a = run_once(batch);
        let b = run_once(batch);
        let jsonl = a.to_jsonl();
        assert_eq!(
            jsonl,
            b.to_jsonl(),
            "batch {batch}: same seed must export byte-identical telemetry"
        );
        assert!(
            jsonl.contains("\"event\":\"span\""),
            "batch {batch}: no span events in export"
        );
        let spans = assemble_spans(&a.trace);
        assert!(!spans.is_empty(), "batch {batch}: no spans assembled");
        // Every sampled tuple crossed the whole pipeline: one hop per
        // receiving actor (the source stamps but does not receive).
        for p in &spans {
            assert_eq!(p.hops.len(), 2, "span for seq {} truncated", p.tuple_seq);
        }
        exports.push(jsonl);
    }
    // Virtual time coalesces nothing: batch size cannot change the export.
    assert!(exports.windows(2).all(|w| w[0] == w[1]));
}

/// Runs the keyed fan-out graph of `tests/batching.rs` and records
/// `(key, seq)` arrival order at the sink.
fn run_keyed(executor: &Executor, tcfg: Option<&TelemetryConfig>) -> (Vec<(u64, u64)>, u64) {
    let items = 4_000;
    let arrivals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = ActorGraph::new();
    let cfg = SourceConfig::new(1e6, items).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(cfg));
    let r0 = g.add_actor("r0", Behavior::worker(PassThrough));
    let r1 = g.add_actor("r1", Behavior::worker(PassThrough));
    let log = Arc::clone(&arrivals);
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "record",
            move |t: spinstreams::core::Tuple, out: &mut Outputs| {
                log.lock().unwrap().push((t.key, t.seq));
                out.emit_default(t);
            },
        ))),
    );
    g.connect(
        s,
        Route::KeyMap {
            key_map: vec![0, 1, 0, 1, 0, 1, 0, 1],
            destinations: vec![r0, r1],
        },
    );
    g.connect(r0, Route::Unicast(k));
    g.connect(r1, Route::Unicast(k));
    let report = match tcfg {
        Some(t) => execute_with_telemetry(g, executor, t).unwrap().0,
        None => execute(g, executor).unwrap(),
    };
    let delivered = report.actor(k).items_in;
    (
        Arc::try_unwrap(arrivals).unwrap().into_inner().unwrap(),
        delivered,
    )
}

fn per_key(arrivals: &[(u64, u64)]) -> Vec<Vec<u64>> {
    let mut seqs = vec![Vec::new(); 8];
    for &(key, seq) in arrivals {
        seqs[key as usize].push(seq);
    }
    seqs
}

/// Arming the flight recorder must not change what the graph computes:
/// with span tracing on, delivered counts and per-key arrival order match
/// the untraced run — on the threaded executor and on the simulator.
#[test]
fn tracing_on_off_is_semantically_equivalent_on_both_executors() {
    let tcfg = TelemetryConfig::default()
        .with_interval(Duration::from_millis(20))
        .with_span_sample(8);
    let executors: [(&str, Executor); 2] = [
        (
            "threaded",
            Executor::Threads(EngineConfig {
                mailbox_capacity: 64,
                seed: 42,
                batch_size: 8,
                ..EngineConfig::default()
            }),
        ),
        (
            "sim",
            Executor::VirtualTime(SimConfig {
                mailbox_capacity: 64,
                seed: 42,
                intrinsic_time: false,
                ..SimConfig::default()
            }),
        ),
    ];
    for (name, executor) in &executors {
        let (off, delivered_off) = run_keyed(executor, None);
        let (on, delivered_on) = run_keyed(executor, Some(&tcfg));
        assert_eq!(delivered_off, 4_000, "{name}: untraced run lost items");
        assert_eq!(
            delivered_off, delivered_on,
            "{name}: tracing changed the delivered count"
        );
        assert_eq!(
            per_key(&off),
            per_key(&on),
            "{name}: tracing changed per-key order"
        );
    }
}

fn rel(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        a.abs()
    } else {
        (a - b).abs() / b.abs()
    }
}

/// The online re-profiler must agree with the oracle's offline §4.1
/// profiler: over 20 oracle-seeded topologies, every annotation the
/// online path estimates (from the final telemetry snapshot's cumulative
/// counters) matches the value `oracle::annotate` computes from the same
/// deterministic trace, within the oracle's tolerance bands. On clean
/// (non-divergent) seeds the attribution engine's bottleneck naming is
/// checked against Algorithm 1's — and against the measured ranking
/// whenever the predicted margin is decisive.
#[test]
fn online_reprofiler_matches_offline_profiler_on_oracle_seeds() {
    let cfg = OracleConfig {
        threaded_runs: 0,
        check_fission: false,
        minimize: false,
        ..OracleConfig::default()
    };
    let tol = Tolerances::default();
    let tcfg = TelemetryConfig::default()
        .with_interval(Duration::from_millis(100))
        .with_span_sample(64);

    let mut compared = 0usize;
    let mut bottleneck_checks = 0usize;
    for seed in 0..20u64 {
        let (sc, report) = run_scenario(seed, &cfg, false);
        let exec = sim_executor(seed);

        // Offline: the oracle's measure + annotate on the deterministic run.
        let meas = measure(&sc.topology, &sc.source_keys, &[], cfg.items, seed, &exec)
            .expect("offline measure");
        let offline =
            annotate(&sc.topology, &meas, None, tol.min_samples).expect("offline annotate");

        // Online: same seed, same executor — the simulator's determinism
        // means the telemetry snapshot sees the *same* trace the offline
        // profiler measured.
        let mut plan = build_actor_graph(
            &sc.topology,
            Some(sc.source_keys.clone()),
            &[],
            &[],
            &CodegenOptions {
                items: cfg.items,
                seed,
                ..CodegenOptions::default()
            },
        )
        .expect("codegen");
        let graph = std::mem::take(&mut plan.graph);
        let (_, telemetry) = execute_with_telemetry(graph, &exec, &tcfg).expect("online run");
        let snap = telemetry.snapshots.last().expect("final snapshot");

        let mut rp = Reprofiler::new(&sc.topology).with_min_samples(tol.min_samples);
        let estimates = rp.update(&operator_counters(&sc.topology, &plan, snap));
        for (slot, est) in estimates.iter().enumerate() {
            let Some(est) = *est else { continue };
            let id = rp.annotations()[slot];
            let (offline_value, ok) = match id.kind {
                AnnotationKind::ServiceTime => {
                    let off = offline.operator(id.operator).service_time.as_secs();
                    (off, rel(est, off) <= tol.departure_rel)
                }
                AnnotationKind::Selectivity => {
                    let off = offline.operator(id.operator).selectivity.rate_factor();
                    (off, rel(est, off) <= tol.departure_rel)
                }
                AnnotationKind::EdgeProbability { to } => {
                    let off = offline.edge_probability(id.operator, to).unwrap();
                    (off, (est - off).abs() <= tol.utilization_abs)
                }
            };
            assert!(
                ok,
                "seed {seed}: {} online {est:.9} vs offline {offline_value:.9}",
                rp.describe(slot)
            );
            compared += 1;
        }

        // Bottleneck naming: the attribution engine's prediction is
        // Algorithm 1's — and on clean seeds with a decisive predicted
        // margin, the measured ranking must name the same operator.
        if report.is_clean() {
            let steady = steady_state(&sc.topology);
            let attr = attribute(
                &sc.topology,
                &steady,
                &observed_operators(&sc.topology, &plan, snap),
            );
            if !steady.bottlenecks.is_empty() {
                assert!(
                    steady
                        .bottlenecks
                        .iter()
                        .any(|b| Some(b.operator) == attr.predicted),
                    "seed {seed}: attribution named {:?}, not one of Algorithm 1's \
                     bottlenecks {:?}",
                    attr.predicted,
                    steady.bottlenecks
                );
            }
            // Measured-vs-predicted agreement is judged on the *calibrated*
            // (offline-annotated) topology: realized selectivities are
            // trace-dependent, so only the profiled model's ranking is
            // expected to match the measured one.
            let steady_cal = steady_state(&offline);
            let attr_cal = attribute(
                &offline,
                &steady_cal,
                &observed_operators(&offline, &plan, snap),
            );
            let mut rhos: Vec<(spinstreams::core::OperatorId, f64)> = offline
                .operator_ids()
                .filter(|&id| id != offline.source())
                .map(|id| (id, steady_cal.metric(id).utilization))
                .collect();
            rhos.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let decisive = rhos.len() >= 2 && rhos[0].1 - rhos[1].1 > 2.0 * tol.utilization_abs;
            let observable = attr_cal
                .predicted
                .map(|p| attr_cal.verdict(p).measured_utilization.is_some())
                .unwrap_or(false);
            if decisive && observable {
                assert_eq!(
                    attr_cal.observed, attr_cal.predicted,
                    "seed {seed}: decisive predicted bottleneck not measured as such"
                );
                bottleneck_checks += 1;
            }
        }
    }
    assert!(
        compared >= 40,
        "expected >= 40 annotation comparisons across 20 seeds, got {compared}"
    );
    assert!(
        bottleneck_checks >= 3,
        "expected >= 3 decisive bottleneck agreements, got {bottleneck_checks}"
    );
}
