//! Equivalence tests for the worker-pool executor: multiplexing actors
//! over a fixed pool of cooperative workers must change scheduling, never
//! semantics. Delivered counts, per-key order, and supervision accounting
//! must be independent of the executor; and the per-batch sink clock must
//! bound latency-histogram skew to a single drained batch.

use spinstreams::analysis::DriftConfig;
use spinstreams::core::{KeyDistribution, OperatorSpec, ServiceTime, Topology, Tuple};
use spinstreams::runtime::operators::{FnOperator, PassThrough, Spin};
use spinstreams::runtime::{
    run, run_with_telemetry, ActorGraph, Behavior, EngineConfig, Executor, ExecutorKind, Outputs,
    Route, SimConfig, SourceConfig, TelemetryConfig,
};
use spinstreams::tool::predict_vs_measure_telemetry;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The schedules under test: the thread-per-actor baseline and pools both
/// saturated (workers ≥ actors) and oversubscribed (workers < actors).
const EXECUTORS: [ExecutorKind; 4] = [
    ExecutorKind::ThreadPerActor,
    ExecutorKind::Pool { workers: 1 },
    ExecutorKind::Pool { workers: 2 },
    ExecutorKind::Pool { workers: 4 },
];

fn engine_cfg(executor: ExecutorKind) -> EngineConfig {
    EngineConfig {
        mailbox_capacity: 64,
        seed: 42,
        batch_size: 8,
        executor,
        ..EngineConfig::default()
    }
}

/// Source with uniform keys fanning out over a `KeyMap` into two replicas
/// that converge on an order-recording sink. Each key follows exactly one
/// path, so its arrival order at the sink is fully determined — under
/// every executor.
fn run_keyed(executor: ExecutorKind, items: u64) -> Vec<(u64, u64)> {
    let arrivals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = ActorGraph::new();
    let cfg = SourceConfig::new(f64::INFINITY, items).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(cfg));
    let r0 = g.add_actor("r0", Behavior::worker(PassThrough));
    let r1 = g.add_actor("r1", Behavior::worker(PassThrough));
    let log = Arc::clone(&arrivals);
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "record",
            move |t: Tuple, out: &mut Outputs| {
                log.lock().unwrap().push((t.key, t.seq));
                out.emit_default(t);
            },
        ))),
    );
    g.connect(
        s,
        Route::KeyMap {
            key_map: vec![0, 1, 0, 1, 0, 1, 0, 1],
            destinations: vec![r0, r1],
        },
    );
    g.connect(r0, Route::Unicast(k));
    g.connect(r1, Route::Unicast(k));
    let report = run(g, &engine_cfg(executor)).unwrap();
    assert_eq!(
        report.actor(k).items_in,
        items,
        "{executor:?}: no items lost or dropped"
    );
    assert_eq!(report.total_dropped(), 0, "{executor:?}");
    Arc::try_unwrap(arrivals).unwrap().into_inner().unwrap()
}

#[test]
fn keyed_counts_and_per_key_order_match_across_executors() {
    let items = 4_000;
    let per_key = |arrivals: &[(u64, u64)]| -> Vec<Vec<u64>> {
        let mut seqs = vec![Vec::new(); 8];
        for &(key, seq) in arrivals {
            seqs[key as usize].push(seq);
        }
        seqs
    };
    let baseline = per_key(&run_keyed(ExecutorKind::ThreadPerActor, items));
    for seqs in &baseline {
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "per-key arrival order must be the source order"
        );
    }
    for executor in EXECUTORS {
        let arrivals = run_keyed(executor, items);
        assert_eq!(arrivals.len(), items as usize, "{executor:?}");
        assert_eq!(
            per_key(&arrivals),
            baseline,
            "{executor:?}: per-key order must match thread-per-actor"
        );
    }
}

/// A mid-pipeline panic under the default Stop+Drop policy: the panicking
/// tuple and everything behind it become dead letters. The accounting is
/// count-based, not timing-based, so every executor must report the same
/// delivered and dead-lettered totals.
#[test]
fn supervision_accounting_matches_across_executors() {
    let run_flaky = |executor: ExecutorKind| -> (u64, u64) {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 25)),
        );
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(FnOperator::new(
                "panic-at-10",
                |t: Tuple, out: &mut Outputs| {
                    assert!(t.seq != 10, "tuple 10 is poison");
                    out.emit_default(t);
                },
            ))),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        // No set_supervision call: default is Stop + Drop.
        let r = run(g, &engine_cfg(executor)).unwrap();
        assert_eq!(r.actor(w).panics, 1, "{executor:?}");
        (r.actor(k).items_in, r.total_dead_letters())
    };
    let (delivered, dead) = run_flaky(ExecutorKind::ThreadPerActor);
    assert_eq!(delivered, 10, "tuples 0..=9 precede the poison tuple");
    assert_eq!(delivered + dead, 25, "every tuple is accounted for");
    for executor in EXECUTORS {
        assert_eq!(
            run_flaky(executor),
            (delivered, dead),
            "{executor:?}: supervision accounting must match thread-per-actor"
        );
    }
}

/// The sink clock is read once per drained batch, not once per envelope.
/// A source floods 8 tuples into a sink that burns 5 ms each; when the
/// sink drains them as one batch, every tuple's recorded latency uses the
/// drain timestamp, so the histogram max stays far below the 40 ms the
/// batch takes to *process*. Per-envelope stamping (the regression this
/// guards against) would time tuple `i` after `i` spins and put the max
/// at ≥ 35 ms in every attempt. Partial drains legitimately inflate the
/// max, so the test retries and passes on the first clean attempt.
#[test]
fn sink_latency_skew_is_bounded_to_one_drained_batch() {
    const SPIN_NS: u64 = 5_000_000;
    const THRESHOLD_NS: u64 = 15_000_000;
    let attempt = || -> u64 {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(f64::INFINITY, 8)));
        let k = g.add_actor("sink", Behavior::worker(Spin::new("burn", SPIN_NS)));
        g.connect(s, Route::Unicast(k));
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_secs(10));
        let (report, tel) =
            run_with_telemetry(g, &engine_cfg(ExecutorKind::ThreadPerActor), &tcfg).unwrap();
        assert_eq!(report.actor(k).items_in, 8);
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.latencies.len(), 1);
        assert_eq!(last.latencies[0].latency.count, 8);
        last.latencies[0].latency.max_ns
    };
    let mut best = u64::MAX;
    for _ in 0..5 {
        best = best.min(attempt());
        if best < THRESHOLD_NS {
            return;
        }
    }
    panic!("histogram max {best} ns across 5 attempts — sink clock looks per-envelope");
}

/// The executor refactor must not leak host time into the virtual-time
/// path: the discrete-event telemetry export stays a pure function of
/// topology and seed, byte-identical across repeated runs.
#[test]
fn virtual_time_telemetry_stays_deterministic() {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("work", ServiceTime::from_micros(300.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 300_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    let topo = b.build().unwrap();
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(100));
    let export = || {
        let executor = Executor::VirtualTime(SimConfig {
            mailbox_capacity: 32,
            seed: 0xBA7C4,
            intrinsic_time: false,
            batch_size: 8,
            checkpoint_interval: None,
        });
        predict_vs_measure_telemetry(&topo, 5_000, &executor, &tcfg, DriftConfig::default())
            .unwrap()
            .export
            .jsonl
    };
    let first = export();
    assert!(!first.is_empty());
    assert_eq!(export(), first, "repeated sim runs must export identically");
}
