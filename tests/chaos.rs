//! End-to-end chaos tests: fault-injected topologies on the threaded
//! runtime, verifying the supervision layer's acceptance criteria — the
//! run completes (`run()` returns `Ok`), the process never aborts,
//! restarts and dead letters show up in the report, and the measured
//! throughput degradation stays within the path-probability prediction.

use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::operators::{FaultConfig, FaultInjector, PassThrough};
use spinstreams::runtime::{
    run, ActorGraph, Backoff, Behavior, DeadLetterReason, EngineConfig, Route, SourceConfig,
    SupervisorSpec,
};
use spinstreams::tool::{run_chaos, ChaosConfig};
use std::time::Duration;

/// A diamond topology (source -> split -> {left, right} -> merge) with
/// runnable operator kinds and small service times.
fn diamond() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(5.0)).with_kind("source"),
    );
    let split = b.add_operator(
        OperatorSpec::stateless("split", ServiceTime::from_micros(2.0))
            .with_kind("identity-map")
            .with_param("work_ns", 2_000.0),
    );
    let left = b.add_operator(
        OperatorSpec::stateless("left", ServiceTime::from_micros(3.0))
            .with_kind("identity-map")
            .with_param("work_ns", 3_000.0),
    );
    let right = b.add_operator(
        OperatorSpec::stateless("right", ServiceTime::from_micros(3.0))
            .with_kind("identity-map")
            .with_param("work_ns", 3_000.0),
    );
    let merge = b.add_operator(
        OperatorSpec::stateless("merge", ServiceTime::from_micros(1.0))
            .with_kind("identity-map")
            .with_param("work_ns", 1_000.0),
    );
    b.add_edge(s, split, 1.0).unwrap();
    b.add_edge(split, left, 0.5).unwrap();
    b.add_edge(split, right, 0.5).unwrap();
    b.add_edge(left, merge, 1.0).unwrap();
    b.add_edge(right, merge, 1.0).unwrap();
    b.build().unwrap()
}

#[test]
fn chaos_run_at_five_percent_panics_completes_within_prediction() {
    let topo = diamond();
    let cfg = ChaosConfig {
        items: 8_000,
        panic_prob: 0.05,
        seed: 0xFA117,
        ..ChaosConfig::default()
    };
    // The acceptance bar: run() returns Ok — no panic escapes, the
    // process never aborts.
    let outcome = run_chaos(&topo, &cfg).expect("chaos run must complete");

    assert!(outcome.run.total_panics() > 0, "injector must fire at 5%");
    assert!(
        outcome.run.total_restarts() > 0,
        "restart supervision must engage"
    );
    assert!(outcome.run.total_dead_letters() > 0);
    assert_eq!(
        outcome.run.total_dead_letters(),
        outcome.run.dead_letters.total(),
        "per-actor counters agree with the structural log"
    );
    // Source emits everything (panics happen downstream of it).
    let src = &outcome.run.actors[0];
    assert_eq!(src.items_out, 8_000);

    // Every path source->split->{left,right}->merge has 2 intermediate
    // workers: predicted delivered fraction (1 - 0.05)^2 = 0.9025.
    assert!(
        (outcome.predicted_fraction - 0.9025).abs() < 1e-12,
        "predicted {}",
        outcome.predicted_fraction
    );
    // The measurement is binomial around the prediction; 8000 items keep
    // the noise well under this band.
    assert!(
        outcome.relative_error() < 0.05,
        "predicted {} vs measured {}",
        outcome.predicted_fraction,
        outcome.measured_fraction
    );
    // Dead letters record the panics explicitly.
    assert_eq!(
        outcome
            .run
            .dead_letters
            .by_reason(DeadLetterReason::OperatorPanic),
        outcome.run.total_panics()
    );
}

#[test]
fn chaos_runs_are_reproducible_per_seed() {
    let topo = diamond();
    let cfg = ChaosConfig {
        items: 2_000,
        panic_prob: 0.08,
        seed: 42,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&topo, &cfg).unwrap();
    let b = run_chaos(&topo, &cfg).unwrap();
    // The fault schedule is seeded per actor: identical runs see
    // identical panic counts per actor.
    let panics = |o: &spinstreams::tool::ChaosOutcome| {
        o.run.actors.iter().map(|a| a.panics).collect::<Vec<_>>()
    };
    assert_eq!(panics(&a), panics(&b));
    assert_eq!(a.run.total_dead_letters(), b.run.total_dead_letters());
}

#[test]
fn send_timeout_drops_surface_as_dead_letters_in_the_report() {
    // A slow consumer behind a tiny mailbox and a 1 ms send timeout: the
    // upstream sheds load, and every shed item must be visible end-to-end
    // in the run report as a SendTimeout dead letter.
    use spinstreams::runtime::operators::Spin;
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, 128)),
    );
    let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 2_000_000)));
    g.connect(s, Route::Unicast(w));
    g.set_mailbox_capacity(w, 4);
    let cfg = EngineConfig {
        send_timeout: Duration::from_millis(1),
        ..EngineConfig::default()
    };
    let report = run(g, &cfg).expect("load shedding is not an error");
    let dropped = report.actor(s).dropped;
    assert!(dropped > 0, "expected send-timeout drops");
    assert_eq!(report.dead_letters.total(), dropped);
    assert_eq!(
        report.dead_letters.by_reason(DeadLetterReason::SendTimeout),
        dropped
    );
    assert_eq!(report.actor(s).dead_letters, dropped);
    // Entries carry the failed route: src -> slow.
    for l in report.dead_letters.entries() {
        assert_eq!(l.source, s);
        assert_eq!(l.destination, Some(w));
    }
    // Conservation: everything the source generated is either consumed
    // downstream or structurally accounted for.
    assert_eq!(report.actor(w).items_in + dropped, 128);
}

#[test]
fn hand_built_graph_survives_injected_faults_with_restarts() {
    // Direct ActorGraph construction (no codegen): source -> flaky x2 ->
    // sink with restart supervision and real (tiny) backoff, checking the
    // backoff time is accounted.
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, 4_000)),
    );
    let f1 = g.add_actor(
        "flaky1",
        Behavior::Worker(Box::new(FaultInjector::new(
            PassThrough,
            FaultConfig::panics(0.05, 101),
        ))),
    );
    let f2 = g.add_actor(
        "flaky2",
        Behavior::Worker(Box::new(FaultInjector::new(
            PassThrough,
            FaultConfig::panics(0.05, 202),
        ))),
    );
    let k = g.add_actor("sink", Behavior::worker(PassThrough));
    g.connect(s, Route::Unicast(f1));
    g.connect(f1, Route::Unicast(f2));
    g.connect(f2, Route::Unicast(k));
    let backoff = Backoff {
        initial: Duration::from_micros(50),
        max: Duration::from_micros(50),
        multiplier: 1.0,
        jitter: 0.0,
    };
    for id in [f1, f2] {
        g.set_supervision(id, SupervisorSpec::restart(u32::MAX, backoff.clone()));
    }
    let report = run(g, &EngineConfig::default()).expect("supervised run completes");
    assert!(report.total_panics() > 0);
    assert_eq!(report.total_restarts(), report.total_panics());
    assert!(report.actor(f1).backoff > Duration::ZERO);
    // Sink arrivals ~ 4000 * 0.95^2 = 3610; generous ±8% band.
    let arrived = report.actor(k).items_in as f64;
    assert!(
        (arrived / 4_000.0 - 0.9025).abs() < 0.08,
        "arrived {arrived}"
    );
    assert_eq!(
        report.actor(k).items_in + report.total_dead_letters(),
        4_000,
        "conservation: arrived + dead-lettered = generated"
    );
}
