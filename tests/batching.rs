//! Equivalence tests for the batched data path: coalescing envelopes must
//! change throughput, never semantics. Delivered counts, per-key order,
//! supervision accounting, and (under the discrete-event executor) the
//! byte-exact telemetry export must all be independent of `batch_size`.

use spinstreams::analysis::DriftConfig;
use spinstreams::core::{KeyDistribution, OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::operators::{FnOperator, PassThrough};
use spinstreams::runtime::{
    run, ActorGraph, Behavior, EngineConfig, Executor, Outputs, Route, SimConfig, SourceConfig,
    TelemetryConfig,
};
use spinstreams::tool::predict_vs_measure_telemetry;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn engine_cfg(batch_size: usize) -> EngineConfig {
    EngineConfig {
        mailbox_capacity: 64,
        seed: 42,
        batch_size,
        ..EngineConfig::default()
    }
}

/// Source with uniform keys fanning out over a `KeyMap` into two replicas
/// that converge on an order-recording sink. Each key follows exactly one
/// path, so its arrival order at the sink is fully determined — at every
/// batch size.
fn run_keyed(batch_size: usize, items: u64) -> Vec<(u64, u64)> {
    let arrivals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut g = ActorGraph::new();
    let cfg = SourceConfig::new(f64::INFINITY, items).with_keys(KeyDistribution::uniform(8));
    let s = g.add_actor("src", Behavior::Source(cfg));
    let r0 = g.add_actor("r0", Behavior::worker(PassThrough));
    let r1 = g.add_actor("r1", Behavior::worker(PassThrough));
    let log = Arc::clone(&arrivals);
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(FnOperator::new(
            "record",
            move |t: spinstreams::core::Tuple, out: &mut Outputs| {
                log.lock().unwrap().push((t.key, t.seq));
                out.emit_default(t);
            },
        ))),
    );
    g.connect(
        s,
        Route::KeyMap {
            key_map: vec![0, 1, 0, 1, 0, 1, 0, 1],
            destinations: vec![r0, r1],
        },
    );
    g.connect(r0, Route::Unicast(k));
    g.connect(r1, Route::Unicast(k));
    let report = run(g, &engine_cfg(batch_size)).unwrap();
    assert_eq!(report.actor(k).items_in, items, "no items lost or dropped");
    assert_eq!(report.total_dropped(), 0);
    Arc::try_unwrap(arrivals).unwrap().into_inner().unwrap()
}

#[test]
fn keyed_delivery_counts_and_per_key_order_match_across_batch_sizes() {
    let items = 4_000;
    let baseline = run_keyed(1, items);
    assert_eq!(baseline.len(), items as usize);
    // Per-key sequences of the unbatched run, in arrival order.
    let per_key = |arrivals: &[(u64, u64)]| -> Vec<Vec<u64>> {
        let mut seqs = vec![Vec::new(); 8];
        for &(key, seq) in arrivals {
            seqs[key as usize].push(seq);
        }
        seqs
    };
    let base_seqs = per_key(&baseline);
    for seqs in &base_seqs {
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "per-key arrival order must be the source order"
        );
    }
    for batch in [8, 64] {
        let arrivals = run_keyed(batch, items);
        assert_eq!(arrivals.len(), items as usize, "batch {batch}");
        assert_eq!(
            per_key(&arrivals),
            base_seqs,
            "batch {batch}: per-key order must match the unbatched run"
        );
    }
}

#[test]
fn fan_out_topology_is_lossless_at_every_batch_size() {
    for batch in BATCH_SIZES {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 3_000)),
        );
        let replicas: Vec<_> = (0..4)
            .map(|i| g.add_actor(format!("r{i}"), Behavior::worker(PassThrough)))
            .collect();
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::RoundRobin(replicas.clone()));
        for r in &replicas {
            g.connect(*r, Route::Unicast(k));
        }
        let report = run(g, &engine_cfg(batch)).unwrap();
        assert_eq!(report.actor(k).items_in, 3_000, "batch {batch}");
        for r in &replicas {
            assert_eq!(report.actor(*r).items_in, 750, "batch {batch}");
        }
        assert_eq!(report.total_dropped(), 0);
    }
}

fn telemetry_pipeline() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("work", ServiceTime::from_micros(300.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 300_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(10.0))
            .with_kind("identity-map")
            .with_param("work_ns", 10_000.0),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    b.build().unwrap()
}

/// Under the discrete-event executor the telemetry export is a pure
/// function of topology and seed; `batch_size` amortizes host-level
/// synchronization that virtual time does not model, so every batch size
/// must produce the byte-identical JSON-lines export.
#[test]
fn sim_telemetry_export_is_byte_identical_across_batch_sizes() {
    let topo = telemetry_pipeline();
    let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(100));
    let drift = DriftConfig::default();
    let export_at = |batch_size: usize| {
        let executor = Executor::VirtualTime(SimConfig {
            mailbox_capacity: 32,
            seed: 0xBA7C4,
            intrinsic_time: false,
            batch_size,
            checkpoint_interval: None,
        });
        predict_vs_measure_telemetry(&topo, 5_000, &executor, &tcfg, drift)
            .unwrap()
            .export
            .jsonl
    };
    let baseline = export_at(1);
    assert!(!baseline.is_empty());
    for batch in [8, 64] {
        assert_eq!(
            export_at(batch),
            baseline,
            "batch {batch}: virtual-time telemetry must be byte-identical to batch 1"
        );
    }
}
