//! Value-level semantic equivalence tests of the runtime transformations:
//! fission and fusion must not change *what* the application computes,
//! only how fast — checked by capturing the actual tuples reaching sinks.

use spinstreams::core::{KeyDistribution, Tuple};
use spinstreams::runtime::operators::{FnOperator, PassThrough};
use spinstreams::runtime::{
    simulate, ActorGraph, Behavior, MetaDest, MetaOperator, MetaRoute, Outputs, Route, SimConfig,
    SourceConfig, StreamOperator,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

type Captured = Arc<Mutex<Vec<Tuple>>>;

fn capturing_sink(store: Captured) -> Behavior {
    Behavior::Worker(Box::new(FnOperator::new(
        "capture",
        move |t: Tuple, _out: &mut Outputs| {
            store.lock().unwrap().push(t);
        },
    )))
}

fn sim() -> SimConfig {
    SimConfig {
        mailbox_capacity: 32,
        seed: 0x5E11,
        ..SimConfig::default()
    }
}

/// A deterministic transform used on both sides of differential tests.
fn plus(delta: f64) -> Box<dyn StreamOperator> {
    Box::new(FnOperator::new(
        "plus",
        move |t: Tuple, out: &mut Outputs| {
            out.emit_default(t.with_value(0, t.values[0] + delta));
        },
    ))
}

/// A deterministic keyed running sum (emits the per-key total so far).
struct KeyedRunningSum {
    sums: BTreeMap<u64, f64>,
}

impl StreamOperator for KeyedRunningSum {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        let s = self.sums.entry(item.key).or_insert(0.0);
        *s += item.values[0];
        out.emit_default(item.with_value(1, *s));
    }
}

#[test]
fn fused_chain_computes_identical_values_to_unfused() {
    // Unfused: src -> +1 -> +10 -> sink.
    let run_unfused = || {
        let store: Captured = Default::default();
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e5, 500)));
        let a = g.add_actor("a", Behavior::Worker(plus(1.0)));
        let b = g.add_actor("b", Behavior::Worker(plus(10.0)));
        let k = g.add_actor("sink", capturing_sink(Arc::clone(&store)));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(k));
        simulate(g, &sim()).unwrap();
        let mut v = store.lock().unwrap().clone();
        v.sort_by_key(|t| t.seq);
        v
    };
    // Fused: src -> F(+1, +10) -> sink.
    let run_fused = || {
        let store: Captured = Default::default();
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e5, 500)));
        let meta = MetaOperator::new(
            "F",
            vec![plus(1.0), plus(10.0)],
            vec![
                vec![MetaRoute::Unicast(MetaDest::Member(1))],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
            ],
            0,
            1,
        );
        let f = g.add_actor("F", Behavior::Worker(Box::new(meta)));
        let k = g.add_actor("sink", capturing_sink(Arc::clone(&store)));
        g.connect(s, Route::Unicast(f));
        g.connect(f, Route::Unicast(k));
        simulate(g, &sim()).unwrap();
        let mut v = store.lock().unwrap().clone();
        v.sort_by_key(|t| t.seq);
        v
    };
    let unfused = run_unfused();
    let fused = run_fused();
    assert_eq!(unfused.len(), 500);
    assert_eq!(unfused, fused, "fusion changed the computed values");
}

#[test]
fn keyed_fission_preserves_per_key_final_sums() {
    // A keyed running sum must produce the same *final* per-key totals
    // whether it runs as one instance or as key-partitioned replicas.
    let final_sums = |replicated: bool| -> BTreeMap<u64, f64> {
        let store: Captured = Default::default();
        let mut g = ActorGraph::new();
        let cfg = SourceConfig::new(1e5, 2_000).with_keys(KeyDistribution::uniform(8));
        let s = g.add_actor("src", Behavior::Source(cfg));
        let k = g.add_actor("sink", capturing_sink(Arc::clone(&store)));
        if replicated {
            let e = g.add_actor("emitter", Behavior::worker(PassThrough));
            let r0 = g.add_actor(
                "r0",
                Behavior::Worker(Box::new(KeyedRunningSum {
                    sums: BTreeMap::new(),
                })),
            );
            let r1 = g.add_actor(
                "r1",
                Behavior::Worker(Box::new(KeyedRunningSum {
                    sums: BTreeMap::new(),
                })),
            );
            g.connect(s, Route::Unicast(e));
            g.connect(
                e,
                Route::KeyMap {
                    key_map: vec![0, 1, 0, 1, 0, 1, 0, 1],
                    destinations: vec![r0, r1],
                },
            );
            g.connect(r0, Route::Unicast(k));
            g.connect(r1, Route::Unicast(k));
        } else {
            let w = g.add_actor(
                "w",
                Behavior::Worker(Box::new(KeyedRunningSum {
                    sums: BTreeMap::new(),
                })),
            );
            g.connect(s, Route::Unicast(w));
            g.connect(w, Route::Unicast(k));
        }
        simulate(g, &sim()).unwrap();
        // The final running-sum value observed per key is the key's total.
        let mut out: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        for t in store.lock().unwrap().iter() {
            let e = out.entry(t.key).or_insert((0, 0.0));
            if t.seq >= e.0 {
                *e = (t.seq, t.values[1]);
            }
        }
        out.into_iter().map(|(k, (_, v))| (k, v)).collect()
    };
    let single = final_sums(false);
    let replicated = final_sums(true);
    assert_eq!(single.len(), 8);
    for (key, total) in &single {
        let r = replicated[key];
        assert!(
            (total - r).abs() < 1e-9,
            "key {key}: single {total} vs replicated {r}"
        );
    }
}

#[test]
fn stateless_fission_preserves_the_multiset_of_outputs() {
    // Round-robin replicas of a deterministic map: the union of outputs is
    // exactly the unreplicated output multiset (order may differ).
    let collect = |replicas: usize| -> Vec<(u64, f64)> {
        let store: Captured = Default::default();
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e5, 999)));
        let k = g.add_actor("sink", capturing_sink(Arc::clone(&store)));
        if replicas == 1 {
            let w = g.add_actor("w", Behavior::Worker(plus(2.5)));
            g.connect(s, Route::Unicast(w));
            g.connect(w, Route::Unicast(k));
        } else {
            let e = g.add_actor("emitter", Behavior::worker(PassThrough));
            let rs: Vec<_> = (0..replicas)
                .map(|i| g.add_actor(format!("r{i}"), Behavior::Worker(plus(2.5))))
                .collect();
            g.connect(s, Route::Unicast(e));
            g.connect(e, Route::RoundRobin(rs.clone()));
            for r in rs {
                g.connect(r, Route::Unicast(k));
            }
        }
        simulate(g, &sim()).unwrap();
        let mut v: Vec<(u64, f64)> = store
            .lock()
            .unwrap()
            .iter()
            .map(|t| (t.seq, t.values[0]))
            .collect();
        v.sort_by_key(|a| a.0);
        v
    };
    assert_eq!(collect(1), collect(3));
}

#[test]
fn probabilistic_fused_subgraph_preserves_throughput_counts() {
    // A probabilistic split inside a meta-operator: every input leaves
    // exactly once regardless of which internal path it takes.
    let store: Captured = Default::default();
    let mut g = ActorGraph::new();
    let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e5, 3_000)));
    let meta = MetaOperator::new(
        "F",
        vec![plus(0.0), plus(1.0), plus(2.0)],
        vec![
            vec![MetaRoute::Probabilistic {
                choices: vec![(MetaDest::Member(1), 0.4), (MetaDest::Member(2), 0.6)],
            }],
            vec![MetaRoute::Unicast(MetaDest::Output(0))],
            vec![MetaRoute::Unicast(MetaDest::Output(0))],
        ],
        0,
        9,
    );
    let f = g.add_actor("F", Behavior::Worker(Box::new(meta)));
    let k = g.add_actor("sink", capturing_sink(Arc::clone(&store)));
    g.connect(s, Route::Unicast(f));
    g.connect(f, Route::Unicast(k));
    simulate(g, &sim()).unwrap();
    let v = store.lock().unwrap();
    assert_eq!(v.len(), 3_000);
    // Roughly 40% took the +1 branch.
    let branch1 = v
        .iter()
        .filter(|t| t.values[0] >= 1.0 && t.values[0] < 2.0)
        .count();
    let frac = branch1 as f64 / 3_000.0;
    assert!((frac - 0.4).abs() < 0.05, "branch fraction {frac}");
}
