//! # spinstreams
//!
//! A from-scratch Rust reproduction of **SpinStreams: a Static Optimization
//! Tool for Data Stream Processing Applications** (Mencagli, Dazzi, Tonci —
//! Middleware 2018), packaged as an umbrella crate over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `spinstreams-core` | topology model (operators, edges, selectivity, key distributions) |
//! | [`analysis`] | `spinstreams-analysis` | Algorithms 1–3: steady-state analysis under backpressure, bottleneck elimination via fission, operator fusion |
//! | [`runtime`] | `spinstreams-runtime` | actor-style streaming runtime (BAS mailboxes) with threaded and virtual-time executors |
//! | [`operators`] | `spinstreams-operators` | the 20+ real-world operators of the paper's testbed |
//! | [`topogen`] | `spinstreams-topogen` | Algorithm 5 random topology generator with profiling |
//! | [`xml`] | `spinstreams-xml` | the §4.1 XML topology formalism |
//! | [`codegen`] | `spinstreams-codegen` | optimized topology → executable deployment (the SS2Akka analogue) |
//! | [`tool`] | `spinstreams-tool` | calibration and predict-vs-measure harness |
//! | [`oracle`] | `spinstreams-oracle` | differential oracle: prediction vs simulator vs runtime over seeded topologies |
//! | [`serve`] | `spinstreams-serve` | multi-tenant serving: plan cache, shared pool, model-driven admission |
//!
//! # Quickstart
//!
//! ```
//! use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
//! use spinstreams::analysis::{steady_state, eliminate_bottlenecks};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe the application as a probability-weighted operator graph.
//! let mut b = Topology::builder();
//! let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
//! let slow = b.add_operator(OperatorSpec::stateless("slow", ServiceTime::from_millis(3.0)));
//! b.add_edge(src, slow, 1.0)?;
//! let topo = b.build()?;
//!
//! // Algorithm 1: backpressure throttles the source to 333 items/s...
//! let report = steady_state(&topo);
//! assert!((report.throughput.items_per_sec() - 1000.0 / 3.0).abs() < 1e-6);
//!
//! // ...and Algorithm 2 removes the bottleneck with 3 replicas.
//! let plan = eliminate_bottlenecks(&topo);
//! assert_eq!(plan.replicas, vec![1, 3]);
//! assert!((plan.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use spinstreams_analysis as analysis;
pub use spinstreams_codegen as codegen;
pub use spinstreams_core as core;
pub use spinstreams_operators as operators;
pub use spinstreams_oracle as oracle;
pub use spinstreams_runtime as runtime;
pub use spinstreams_serve as serve;
pub use spinstreams_tool as tool;
pub use spinstreams_topogen as topogen;
pub use spinstreams_xml as xml;
