/root/repo/target/release/deps/spinstreams_tool-fc5c068155c8e5a2.d: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

/root/repo/target/release/deps/libspinstreams_tool-fc5c068155c8e5a2.rlib: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

/root/repo/target/release/deps/libspinstreams_tool-fc5c068155c8e5a2.rmeta: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

crates/tool/src/lib.rs:
crates/tool/src/chaos.rs:
crates/tool/src/dot.rs:
crates/tool/src/format.rs:
crates/tool/src/harness.rs:
