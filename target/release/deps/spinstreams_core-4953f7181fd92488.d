/root/repo/target/release/deps/spinstreams_core-4953f7181fd92488.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libspinstreams_core-4953f7181fd92488.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

/root/repo/target/release/deps/libspinstreams_core-4953f7181fd92488.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/item.rs:
crates/core/src/keys.rs:
crates/core/src/operator.rs:
crates/core/src/order.rs:
crates/core/src/paths.rs:
crates/core/src/rates.rs:
crates/core/src/topology.rs:
