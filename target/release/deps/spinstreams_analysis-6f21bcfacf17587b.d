/root/repo/target/release/deps/spinstreams_analysis-6f21bcfacf17587b.d: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

/root/repo/target/release/deps/libspinstreams_analysis-6f21bcfacf17587b.rlib: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

/root/repo/target/release/deps/libspinstreams_analysis-6f21bcfacf17587b.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bottleneck.rs:
crates/analysis/src/candidates.rs:
crates/analysis/src/fusion.rs:
crates/analysis/src/multi_source.rs:
crates/analysis/src/partitioning.rs:
crates/analysis/src/report.rs:
crates/analysis/src/steady_state.rs:
