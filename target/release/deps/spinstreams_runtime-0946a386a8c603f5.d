/root/repo/target/release/deps/spinstreams_runtime-0946a386a8c603f5.d: crates/runtime/src/lib.rs crates/runtime/src/engine.rs crates/runtime/src/graph.rs crates/runtime/src/mailbox.rs crates/runtime/src/meta.rs crates/runtime/src/metrics.rs crates/runtime/src/operator.rs crates/runtime/src/operators.rs crates/runtime/src/profiler.rs crates/runtime/src/rng.rs crates/runtime/src/route.rs crates/runtime/src/sim.rs crates/runtime/src/supervision.rs

/root/repo/target/release/deps/libspinstreams_runtime-0946a386a8c603f5.rlib: crates/runtime/src/lib.rs crates/runtime/src/engine.rs crates/runtime/src/graph.rs crates/runtime/src/mailbox.rs crates/runtime/src/meta.rs crates/runtime/src/metrics.rs crates/runtime/src/operator.rs crates/runtime/src/operators.rs crates/runtime/src/profiler.rs crates/runtime/src/rng.rs crates/runtime/src/route.rs crates/runtime/src/sim.rs crates/runtime/src/supervision.rs

/root/repo/target/release/deps/libspinstreams_runtime-0946a386a8c603f5.rmeta: crates/runtime/src/lib.rs crates/runtime/src/engine.rs crates/runtime/src/graph.rs crates/runtime/src/mailbox.rs crates/runtime/src/meta.rs crates/runtime/src/metrics.rs crates/runtime/src/operator.rs crates/runtime/src/operators.rs crates/runtime/src/profiler.rs crates/runtime/src/rng.rs crates/runtime/src/route.rs crates/runtime/src/sim.rs crates/runtime/src/supervision.rs

crates/runtime/src/lib.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/mailbox.rs:
crates/runtime/src/meta.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/operator.rs:
crates/runtime/src/operators.rs:
crates/runtime/src/profiler.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/route.rs:
crates/runtime/src/sim.rs:
crates/runtime/src/supervision.rs:
