/root/repo/target/release/deps/spinstreams_codegen-0d63c8ad97c08256.d: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

/root/repo/target/release/deps/libspinstreams_codegen-0d63c8ad97c08256.rlib: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

/root/repo/target/release/deps/libspinstreams_codegen-0d63c8ad97c08256.rmeta: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

crates/codegen/src/lib.rs:
crates/codegen/src/build.rs:
crates/codegen/src/emit.rs:
