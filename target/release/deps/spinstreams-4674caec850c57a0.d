/root/repo/target/release/deps/spinstreams-4674caec850c57a0.d: src/lib.rs

/root/repo/target/release/deps/libspinstreams-4674caec850c57a0.rlib: src/lib.rs

/root/repo/target/release/deps/libspinstreams-4674caec850c57a0.rmeta: src/lib.rs

src/lib.rs:
