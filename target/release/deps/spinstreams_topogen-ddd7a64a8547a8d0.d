/root/repo/target/release/deps/spinstreams_topogen-ddd7a64a8547a8d0.d: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

/root/repo/target/release/deps/libspinstreams_topogen-ddd7a64a8547a8d0.rlib: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

/root/repo/target/release/deps/libspinstreams_topogen-ddd7a64a8547a8d0.rmeta: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

crates/topogen/src/lib.rs:
crates/topogen/src/config.rs:
crates/topogen/src/gen.rs:
