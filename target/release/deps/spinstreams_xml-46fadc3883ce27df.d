/root/repo/target/release/deps/spinstreams_xml-46fadc3883ce27df.d: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libspinstreams_xml-46fadc3883ce27df.rlib: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libspinstreams_xml-46fadc3883ce27df.rmeta: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/writer.rs:
