/root/repo/target/release/deps/spinstreams_operators-8518f2102640ec3c.d: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

/root/repo/target/release/deps/libspinstreams_operators-8518f2102640ec3c.rlib: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

/root/repo/target/release/deps/libspinstreams_operators-8518f2102640ec3c.rmeta: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

crates/operators/src/lib.rs:
crates/operators/src/aggregates.rs:
crates/operators/src/join.rs:
crates/operators/src/registry.rs:
crates/operators/src/spatial.rs:
crates/operators/src/stateful.rs:
crates/operators/src/stateless.rs:
crates/operators/src/window.rs:
