/root/repo/target/debug/examples/fusion_case_study-bb497c1640758b34.d: examples/fusion_case_study.rs

/root/repo/target/debug/examples/fusion_case_study-bb497c1640758b34: examples/fusion_case_study.rs

examples/fusion_case_study.rs:
