/root/repo/target/debug/examples/random_topology-c72a5f6a4abab331.d: examples/random_topology.rs

/root/repo/target/debug/examples/random_topology-c72a5f6a4abab331: examples/random_topology.rs

examples/random_topology.rs:
