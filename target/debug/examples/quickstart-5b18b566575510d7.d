/root/repo/target/debug/examples/quickstart-5b18b566575510d7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5b18b566575510d7: examples/quickstart.rs

examples/quickstart.rs:
