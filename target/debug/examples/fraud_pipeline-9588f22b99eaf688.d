/root/repo/target/debug/examples/fraud_pipeline-9588f22b99eaf688.d: examples/fraud_pipeline.rs

/root/repo/target/debug/examples/fraud_pipeline-9588f22b99eaf688: examples/fraud_pipeline.rs

examples/fraud_pipeline.rs:
