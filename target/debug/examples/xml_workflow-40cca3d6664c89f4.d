/root/repo/target/debug/examples/xml_workflow-40cca3d6664c89f4.d: examples/xml_workflow.rs

/root/repo/target/debug/examples/xml_workflow-40cca3d6664c89f4: examples/xml_workflow.rs

examples/xml_workflow.rs:
