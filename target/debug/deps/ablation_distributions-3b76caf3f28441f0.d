/root/repo/target/debug/deps/ablation_distributions-3b76caf3f28441f0.d: crates/bench/src/bin/ablation_distributions.rs

/root/repo/target/debug/deps/ablation_distributions-3b76caf3f28441f0: crates/bench/src/bin/ablation_distributions.rs

crates/bench/src/bin/ablation_distributions.rs:
