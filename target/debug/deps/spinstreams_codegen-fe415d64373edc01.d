/root/repo/target/debug/deps/spinstreams_codegen-fe415d64373edc01.d: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

/root/repo/target/debug/deps/libspinstreams_codegen-fe415d64373edc01.rlib: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

/root/repo/target/debug/deps/libspinstreams_codegen-fe415d64373edc01.rmeta: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

crates/codegen/src/lib.rs:
crates/codegen/src/build.rs:
crates/codegen/src/emit.rs:
