/root/repo/target/debug/deps/fig8_operator_errors-190e697a421755eb.d: crates/bench/src/bin/fig8_operator_errors.rs

/root/repo/target/debug/deps/fig8_operator_errors-190e697a421755eb: crates/bench/src/bin/fig8_operator_errors.rs

crates/bench/src/bin/fig8_operator_errors.rs:
