/root/repo/target/debug/deps/spinstreams_bench-755bb97774e46fff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/spinstreams_bench-755bb97774e46fff: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
