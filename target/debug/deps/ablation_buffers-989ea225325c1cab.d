/root/repo/target/debug/deps/ablation_buffers-989ea225325c1cab.d: crates/bench/src/bin/ablation_buffers.rs

/root/repo/target/debug/deps/ablation_buffers-989ea225325c1cab: crates/bench/src/bin/ablation_buffers.rs

crates/bench/src/bin/ablation_buffers.rs:
