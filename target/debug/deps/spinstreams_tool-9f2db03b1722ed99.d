/root/repo/target/debug/deps/spinstreams_tool-9f2db03b1722ed99.d: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

/root/repo/target/debug/deps/spinstreams_tool-9f2db03b1722ed99: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

crates/tool/src/lib.rs:
crates/tool/src/chaos.rs:
crates/tool/src/dot.rs:
crates/tool/src/format.rs:
crates/tool/src/harness.rs:
