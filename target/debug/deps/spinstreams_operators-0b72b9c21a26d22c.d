/root/repo/target/debug/deps/spinstreams_operators-0b72b9c21a26d22c.d: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

/root/repo/target/debug/deps/libspinstreams_operators-0b72b9c21a26d22c.rlib: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

/root/repo/target/debug/deps/libspinstreams_operators-0b72b9c21a26d22c.rmeta: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

crates/operators/src/lib.rs:
crates/operators/src/aggregates.rs:
crates/operators/src/join.rs:
crates/operators/src/registry.rs:
crates/operators/src/spatial.rs:
crates/operators/src/stateful.rs:
crates/operators/src/stateless.rs:
crates/operators/src/window.rs:
