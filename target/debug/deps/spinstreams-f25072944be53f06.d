/root/repo/target/debug/deps/spinstreams-f25072944be53f06.d: src/lib.rs

/root/repo/target/debug/deps/spinstreams-f25072944be53f06: src/lib.rs

src/lib.rs:
