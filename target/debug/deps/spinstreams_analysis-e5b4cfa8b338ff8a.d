/root/repo/target/debug/deps/spinstreams_analysis-e5b4cfa8b338ff8a.d: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

/root/repo/target/debug/deps/libspinstreams_analysis-e5b4cfa8b338ff8a.rlib: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

/root/repo/target/debug/deps/libspinstreams_analysis-e5b4cfa8b338ff8a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bottleneck.rs:
crates/analysis/src/candidates.rs:
crates/analysis/src/fusion.rs:
crates/analysis/src/multi_source.rs:
crates/analysis/src/partitioning.rs:
crates/analysis/src/report.rs:
crates/analysis/src/steady_state.rs:
