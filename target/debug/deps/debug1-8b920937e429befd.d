/root/repo/target/debug/deps/debug1-8b920937e429befd.d: crates/bench/src/bin/debug1.rs

/root/repo/target/debug/deps/debug1-8b920937e429befd: crates/bench/src/bin/debug1.rs

crates/bench/src/bin/debug1.rs:
