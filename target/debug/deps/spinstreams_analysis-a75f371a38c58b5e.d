/root/repo/target/debug/deps/spinstreams_analysis-a75f371a38c58b5e.d: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

/root/repo/target/debug/deps/spinstreams_analysis-a75f371a38c58b5e: crates/analysis/src/lib.rs crates/analysis/src/bottleneck.rs crates/analysis/src/candidates.rs crates/analysis/src/fusion.rs crates/analysis/src/multi_source.rs crates/analysis/src/partitioning.rs crates/analysis/src/report.rs crates/analysis/src/steady_state.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bottleneck.rs:
crates/analysis/src/candidates.rs:
crates/analysis/src/fusion.rs:
crates/analysis/src/multi_source.rs:
crates/analysis/src/partitioning.rs:
crates/analysis/src/report.rs:
crates/analysis/src/steady_state.rs:
