/root/repo/target/debug/deps/spinstreams_tool-a45d830df83a7419.d: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

/root/repo/target/debug/deps/libspinstreams_tool-a45d830df83a7419.rlib: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

/root/repo/target/debug/deps/libspinstreams_tool-a45d830df83a7419.rmeta: crates/tool/src/lib.rs crates/tool/src/chaos.rs crates/tool/src/dot.rs crates/tool/src/format.rs crates/tool/src/harness.rs

crates/tool/src/lib.rs:
crates/tool/src/chaos.rs:
crates/tool/src/dot.rs:
crates/tool/src/format.rs:
crates/tool/src/harness.rs:
