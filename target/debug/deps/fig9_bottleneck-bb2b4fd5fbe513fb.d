/root/repo/target/debug/deps/fig9_bottleneck-bb2b4fd5fbe513fb.d: crates/bench/src/bin/fig9_bottleneck.rs

/root/repo/target/debug/deps/fig9_bottleneck-bb2b4fd5fbe513fb: crates/bench/src/bin/fig9_bottleneck.rs

crates/bench/src/bin/fig9_bottleneck.rs:
