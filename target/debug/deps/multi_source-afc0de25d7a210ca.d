/root/repo/target/debug/deps/multi_source-afc0de25d7a210ca.d: tests/multi_source.rs

/root/repo/target/debug/deps/multi_source-afc0de25d7a210ca: tests/multi_source.rs

tests/multi_source.rs:
