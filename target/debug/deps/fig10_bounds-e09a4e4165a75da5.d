/root/repo/target/debug/deps/fig10_bounds-e09a4e4165a75da5.d: crates/bench/src/bin/fig10_bounds.rs

/root/repo/target/debug/deps/fig10_bounds-e09a4e4165a75da5: crates/bench/src/bin/fig10_bounds.rs

crates/bench/src/bin/fig10_bounds.rs:
