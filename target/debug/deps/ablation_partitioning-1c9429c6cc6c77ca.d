/root/repo/target/debug/deps/ablation_partitioning-1c9429c6cc6c77ca.d: crates/bench/src/bin/ablation_partitioning.rs

/root/repo/target/debug/deps/ablation_partitioning-1c9429c6cc6c77ca: crates/bench/src/bin/ablation_partitioning.rs

crates/bench/src/bin/ablation_partitioning.rs:
