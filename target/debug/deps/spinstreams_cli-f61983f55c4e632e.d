/root/repo/target/debug/deps/spinstreams_cli-f61983f55c4e632e.d: crates/tool/src/bin/spinstreams.rs

/root/repo/target/debug/deps/spinstreams_cli-f61983f55c4e632e: crates/tool/src/bin/spinstreams.rs

crates/tool/src/bin/spinstreams.rs:
