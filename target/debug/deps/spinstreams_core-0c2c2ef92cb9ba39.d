/root/repo/target/debug/deps/spinstreams_core-0c2c2ef92cb9ba39.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/spinstreams_core-0c2c2ef92cb9ba39: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/item.rs:
crates/core/src/keys.rs:
crates/core/src/operator.rs:
crates/core/src/order.rs:
crates/core/src/paths.rs:
crates/core/src/rates.rs:
crates/core/src/topology.rs:
