/root/repo/target/debug/deps/fig7_accuracy-0b5d6bd1e33d274b.d: crates/bench/src/bin/fig7_accuracy.rs

/root/repo/target/debug/deps/fig7_accuracy-0b5d6bd1e33d274b: crates/bench/src/bin/fig7_accuracy.rs

crates/bench/src/bin/fig7_accuracy.rs:
