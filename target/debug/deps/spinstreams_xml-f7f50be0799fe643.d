/root/repo/target/debug/deps/spinstreams_xml-f7f50be0799fe643.d: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libspinstreams_xml-f7f50be0799fe643.rlib: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libspinstreams_xml-f7f50be0799fe643.rmeta: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/writer.rs:
