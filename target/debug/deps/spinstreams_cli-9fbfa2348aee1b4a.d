/root/repo/target/debug/deps/spinstreams_cli-9fbfa2348aee1b4a.d: crates/tool/src/bin/spinstreams.rs

/root/repo/target/debug/deps/spinstreams_cli-9fbfa2348aee1b4a: crates/tool/src/bin/spinstreams.rs

crates/tool/src/bin/spinstreams.rs:
