/root/repo/target/debug/deps/runtime_semantics-f86e10e2d271fec1.d: tests/runtime_semantics.rs

/root/repo/target/debug/deps/runtime_semantics-f86e10e2d271fec1: tests/runtime_semantics.rs

tests/runtime_semantics.rs:
