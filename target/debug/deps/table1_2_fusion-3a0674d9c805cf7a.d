/root/repo/target/debug/deps/table1_2_fusion-3a0674d9c805cf7a.d: crates/bench/src/bin/table1_2_fusion.rs

/root/repo/target/debug/deps/table1_2_fusion-3a0674d9c805cf7a: crates/bench/src/bin/table1_2_fusion.rs

crates/bench/src/bin/table1_2_fusion.rs:
