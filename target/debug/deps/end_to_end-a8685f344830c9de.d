/root/repo/target/debug/deps/end_to_end-a8685f344830c9de.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a8685f344830c9de: tests/end_to_end.rs

tests/end_to_end.rs:
