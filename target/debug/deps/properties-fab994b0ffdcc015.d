/root/repo/target/debug/deps/properties-fab994b0ffdcc015.d: tests/properties.rs

/root/repo/target/debug/deps/properties-fab994b0ffdcc015: tests/properties.rs

tests/properties.rs:
