/root/repo/target/debug/deps/spinstreams_operators-424318faaa2e6290.d: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

/root/repo/target/debug/deps/spinstreams_operators-424318faaa2e6290: crates/operators/src/lib.rs crates/operators/src/aggregates.rs crates/operators/src/join.rs crates/operators/src/registry.rs crates/operators/src/spatial.rs crates/operators/src/stateful.rs crates/operators/src/stateless.rs crates/operators/src/window.rs

crates/operators/src/lib.rs:
crates/operators/src/aggregates.rs:
crates/operators/src/join.rs:
crates/operators/src/registry.rs:
crates/operators/src/spatial.rs:
crates/operators/src/stateful.rs:
crates/operators/src/stateless.rs:
crates/operators/src/window.rs:
