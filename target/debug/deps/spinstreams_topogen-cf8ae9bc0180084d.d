/root/repo/target/debug/deps/spinstreams_topogen-cf8ae9bc0180084d.d: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

/root/repo/target/debug/deps/libspinstreams_topogen-cf8ae9bc0180084d.rlib: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

/root/repo/target/debug/deps/libspinstreams_topogen-cf8ae9bc0180084d.rmeta: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

crates/topogen/src/lib.rs:
crates/topogen/src/config.rs:
crates/topogen/src/gen.rs:
