/root/repo/target/debug/deps/spinstreams_xml-dcf5fcc94191e097.d: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/spinstreams_xml-dcf5fcc94191e097: crates/xml/src/lib.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/writer.rs:
