/root/repo/target/debug/deps/spinstreams_topogen-16f15a67218b0581.d: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

/root/repo/target/debug/deps/spinstreams_topogen-16f15a67218b0581: crates/topogen/src/lib.rs crates/topogen/src/config.rs crates/topogen/src/gen.rs

crates/topogen/src/lib.rs:
crates/topogen/src/config.rs:
crates/topogen/src/gen.rs:
