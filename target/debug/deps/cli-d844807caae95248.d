/root/repo/target/debug/deps/cli-d844807caae95248.d: crates/tool/tests/cli.rs

/root/repo/target/debug/deps/cli-d844807caae95248: crates/tool/tests/cli.rs

crates/tool/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_spinstreams-cli=/root/repo/target/debug/spinstreams-cli
