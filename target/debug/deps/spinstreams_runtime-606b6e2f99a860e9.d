/root/repo/target/debug/deps/spinstreams_runtime-606b6e2f99a860e9.d: crates/runtime/src/lib.rs crates/runtime/src/engine.rs crates/runtime/src/graph.rs crates/runtime/src/mailbox.rs crates/runtime/src/meta.rs crates/runtime/src/metrics.rs crates/runtime/src/operator.rs crates/runtime/src/operators.rs crates/runtime/src/profiler.rs crates/runtime/src/rng.rs crates/runtime/src/route.rs crates/runtime/src/sim.rs crates/runtime/src/supervision.rs

/root/repo/target/debug/deps/spinstreams_runtime-606b6e2f99a860e9: crates/runtime/src/lib.rs crates/runtime/src/engine.rs crates/runtime/src/graph.rs crates/runtime/src/mailbox.rs crates/runtime/src/meta.rs crates/runtime/src/metrics.rs crates/runtime/src/operator.rs crates/runtime/src/operators.rs crates/runtime/src/profiler.rs crates/runtime/src/rng.rs crates/runtime/src/route.rs crates/runtime/src/sim.rs crates/runtime/src/supervision.rs

crates/runtime/src/lib.rs:
crates/runtime/src/engine.rs:
crates/runtime/src/graph.rs:
crates/runtime/src/mailbox.rs:
crates/runtime/src/meta.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/operator.rs:
crates/runtime/src/operators.rs:
crates/runtime/src/profiler.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/route.rs:
crates/runtime/src/sim.rs:
crates/runtime/src/supervision.rs:
