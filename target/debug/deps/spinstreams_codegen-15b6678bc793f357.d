/root/repo/target/debug/deps/spinstreams_codegen-15b6678bc793f357.d: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

/root/repo/target/debug/deps/spinstreams_codegen-15b6678bc793f357: crates/codegen/src/lib.rs crates/codegen/src/build.rs crates/codegen/src/emit.rs

crates/codegen/src/lib.rs:
crates/codegen/src/build.rs:
crates/codegen/src/emit.rs:
