/root/repo/target/debug/deps/spinstreams-3c95b9331b4db9cc.d: src/lib.rs

/root/repo/target/debug/deps/libspinstreams-3c95b9331b4db9cc.rlib: src/lib.rs

/root/repo/target/debug/deps/libspinstreams-3c95b9331b4db9cc.rmeta: src/lib.rs

src/lib.rs:
