/root/repo/target/debug/deps/spinstreams_bench-85ffee670fad9f3f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspinstreams_bench-85ffee670fad9f3f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libspinstreams_bench-85ffee670fad9f3f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
