/root/repo/target/debug/deps/spinstreams_core-fa021f82b0ada0c0.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/libspinstreams_core-fa021f82b0ada0c0.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

/root/repo/target/debug/deps/libspinstreams_core-fa021f82b0ada0c0.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/item.rs crates/core/src/keys.rs crates/core/src/operator.rs crates/core/src/order.rs crates/core/src/paths.rs crates/core/src/rates.rs crates/core/src/topology.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/item.rs:
crates/core/src/keys.rs:
crates/core/src/operator.rs:
crates/core/src/order.rs:
crates/core/src/paths.rs:
crates/core/src/rates.rs:
crates/core/src/topology.rs:
