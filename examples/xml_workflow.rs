//! The §4.1 tool workflow: import a topology from its XML description,
//! analyze and optimize it, and generate the code of the optimized
//! application.
//!
//! Run with `cargo run --example xml_workflow`.

use spinstreams::analysis::{eliminate_bottlenecks, steady_state};
use spinstreams::codegen::{emit_rust_source, CodegenOptions};
use spinstreams::xml::{topology_from_xml, topology_to_xml};

const TOPOLOGY_XML: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<topology name="sensor-analytics">
  <operator id="0" name="sensors" kind="source" type="stateless"
            service-time="150" time-unit="us"/>
  <operator id="1" name="clean" kind="filter" type="stateless"
            service-time="100" time-unit="us">
    <selectivity input="1" output="0.8"/>
    <param name="threshold" value="0.8"/>
    <param name="work_ns" value="100000"/>
  </operator>
  <operator id="2" name="per-sensor-avg" kind="keyed-wma" type="partitioned-stateful"
            service-time="600" time-unit="us">
    <selectivity input="2" output="1"/>
    <keys>
      <key frequency="0.4"/>
      <key frequency="0.3"/>
      <key frequency="0.2"/>
      <key frequency="0.1"/>
    </keys>
    <param name="window" value="16"/>
    <param name="slide" value="2"/>
    <param name="work_ns" value="600000"/>
  </operator>
  <operator id="3" name="dashboard" kind="identity-map" type="stateless"
            service-time="50" time-unit="us">
    <param name="work_ns" value="50000"/>
  </operator>
  <edge from="0" to="1" probability="1.0"/>
  <edge from="1" to="2" probability="1.0"/>
  <edge from="2" to="3" probability="1.0"/>
</topology>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Import (§4.1: "the initial topology is provided as input using an
    // XML-based formalism").
    let topo = topology_from_xml(TOPOLOGY_XML)?;
    println!("imported topology:\n{topo}");

    // Analyze.
    let report = steady_state(&topo);
    println!(
        "predicted throughput: {:.0} items/s ({} bottleneck corrections)\n",
        report.throughput.items_per_sec(),
        report.bottlenecks.len()
    );

    // Optimize.
    let plan = eliminate_bottlenecks(&topo);
    println!(
        "fission plan: replicas {:?} -> predicted {:.0} items/s\n",
        plan.replicas,
        plan.throughput.items_per_sec()
    );

    // Round-trip the (annotated) topology back to XML...
    let exported = topology_to_xml(&topo, "sensor-analytics");
    assert_eq!(topology_from_xml(&exported)?, topo);
    println!("XML round-trip OK ({} bytes)\n", exported.len());

    // ...and generate the optimized application's code (the SS2Akka
    // analogue: a standalone Rust program reproducing this deployment).
    let source = emit_rust_source(&topo, &plan.replicas, &[], &CodegenOptions::default());
    println!("--- generated application (main.rs) ---\n{source}");
    Ok(())
}
