//! Quickstart: the full SpinStreams workflow on a small pipeline.
//!
//! 1. describe a topology,
//! 2. run the steady-state analysis (Algorithm 1) to find the bottleneck,
//! 3. remove it with operator fission (Algorithm 2),
//! 4. deploy both versions on the runtime and compare predicted vs
//!    measured throughput.
//!
//! Run with `cargo run --example quickstart`.

use spinstreams::analysis::{eliminate_bottlenecks, format_fission_plan, format_steady_state};
use spinstreams::core::{OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::Executor;
use spinstreams::tool::predict_vs_measure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-stage pipeline: the 400 µs "score" stage is 4x too slow for
    // the 10 000 items/s the source produces.
    let mut b = Topology::builder();
    let src = b.add_operator(
        OperatorSpec::source("ticks", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let parse = b.add_operator(
        OperatorSpec::stateless("parse", ServiceTime::from_micros(50.0))
            .with_kind("identity-map")
            .with_param("work_ns", 50_000.0),
    );
    let score = b.add_operator(
        OperatorSpec::stateless("score", ServiceTime::from_micros(400.0))
            .with_kind("arithmetic-map")
            .with_param("work_ns", 400_000.0),
    );
    let sink = b.add_operator(
        OperatorSpec::stateless("publish", ServiceTime::from_micros(20.0))
            .with_kind("identity-map")
            .with_param("work_ns", 20_000.0),
    );
    b.add_edge(src, parse, 1.0)?;
    b.add_edge(parse, score, 1.0)?;
    b.add_edge(score, sink, 1.0)?;
    let topo = b.build()?;

    println!("--- initial topology ---");
    println!("{topo}");

    // Algorithm 1: where does backpressure cap the throughput?
    let report = spinstreams::analysis::steady_state(&topo);
    println!("{}", format_steady_state(&topo, &report));

    // Algorithm 2: the optimal fission plan.
    let plan = eliminate_bottlenecks(&topo);
    println!("{}", format_fission_plan(&topo, &plan));

    // Deploy both versions (virtual-time executor) and compare.
    let executor = Executor::default();
    let before = predict_vs_measure(&topo, None, &[], &[], 20_000, &executor)?;
    println!(
        "before fission: predicted {:.0} vs measured {:.0} items/s (error {:.1}%)",
        before.predicted_throughput,
        before.measured_throughput,
        before.relative_error() * 100.0
    );
    let after = predict_vs_measure(&topo, None, &plan.replicas, &[], 40_000, &executor)?;
    println!(
        "after fission:  predicted {:.0} vs measured {:.0} items/s (error {:.1}%)",
        after.predicted_throughput,
        after.measured_throughput,
        after.relative_error() * 100.0
    );
    println!(
        "speedup from fission: {:.2}x",
        after.measured_throughput / before.measured_throughput
    );
    Ok(())
}
