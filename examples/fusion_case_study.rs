//! The paper's fusion case study (§5.4, Figure 11, Tables 1 and 2),
//! end to end.
//!
//! Reconstructs the six-operator topology of Figure 11, fuses operators
//! 3, 4 and 5, and shows both verdicts:
//!
//! * Table 1 service times → the fused operator needs 2.80 ms per item and
//!   fusion is *feasible* (no throughput loss);
//! * Table 2 service times → 4.42 ms, the meta-operator becomes a
//!   bottleneck and SpinStreams raises the alert.
//!
//! Both predictions are validated by deploying the fused meta-operator on
//! the runtime.
//!
//! Run with `cargo run --example fusion_case_study`.

use spinstreams::analysis::{fuse, fusion_candidates, steady_state};
use spinstreams::codegen::FusionGroup;
use spinstreams::core::{OperatorId, OperatorSpec, ServiceTime, Topology};
use spinstreams::runtime::Executor;
use spinstreams::tool::{experiment_executor, predict_vs_measure};
use std::collections::BTreeSet;

/// Figure 11's topology with the given per-operator service times (ms).
/// Operators carry runnable kinds so the fused topology can be deployed.
fn figure11(times_ms: [f64; 6]) -> Result<Topology, Box<dyn std::error::Error>> {
    let mut b = Topology::builder();
    let mut ids = Vec::new();
    for (i, t) in times_ms.iter().enumerate() {
        let spec = if i == 0 {
            OperatorSpec::source("op1", ServiceTime::from_millis(*t)).with_kind("source")
        } else {
            OperatorSpec::stateless(format!("op{}", i + 1), ServiceTime::from_millis(*t))
                .with_kind("identity-map")
                .with_param("work_ns", t * 1e6)
        };
        ids.push(b.add_operator(spec));
    }
    b.add_edge(ids[0], ids[1], 0.7)?;
    b.add_edge(ids[0], ids[2], 0.3)?;
    b.add_edge(ids[1], ids[5], 1.0)?;
    b.add_edge(ids[2], ids[3], 0.5)?;
    b.add_edge(ids[2], ids[4], 0.5)?;
    b.add_edge(ids[4], ids[3], 0.35)?;
    b.add_edge(ids[4], ids[5], 0.65)?;
    b.add_edge(ids[3], ids[5], 1.0)?;
    Ok(b.build()?)
}

fn case(
    label: &str,
    times_ms: [f64; 6],
    executor: &Executor,
) -> Result<(), Box<dyn std::error::Error>> {
    let topo = figure11(times_ms)?;
    println!("==================== {label} ====================");
    let baseline = steady_state(&topo);
    println!(
        "original topology: predicted throughput {:.0} items/s",
        baseline.throughput.items_per_sec()
    );

    // The GUI's candidate ranking (§4.1): underutilized sub-graphs first.
    let candidates = fusion_candidates(&topo, 0.9);
    println!("fusion candidates (ranked by mean utilization):");
    for c in &candidates {
        let names: Vec<_> = c
            .members
            .iter()
            .map(|m| topo.operator(*m).name.clone())
            .collect();
        println!(
            "  {:?} front-end {} mean ρ {:.2}",
            names,
            topo.operator(c.front_end).name,
            c.mean_utilization
        );
    }

    // Fuse {op3, op4, op5} (0-based ids 2, 3, 4), as in §5.4.
    let members: BTreeSet<OperatorId> = [OperatorId(2), OperatorId(3), OperatorId(4)]
        .into_iter()
        .collect();
    let outcome = fuse(&topo, &members)?;
    println!(
        "fused operator F: service time {:.2} ms, predicted throughput {:.0} items/s -> {}",
        outcome.fused_service_time.as_millis(),
        outcome.report.throughput.items_per_sec(),
        if outcome.is_feasible() {
            "fusion is FEASIBLE".to_string()
        } else {
            format!(
                "ALERT: fusion would degrade throughput by {:.0}%",
                -outcome.throughput_change() * 100.0
            )
        }
    );

    // Validate by actually running the fused deployment (Algorithm 4
    // meta-operator) against the original.
    // Long enough runs that the buffer-fill transient is negligible.
    let plain = predict_vs_measure(&topo, None, &[], &[], 40_000, executor)?;
    let fused_groups = [FusionGroup {
        members: members.clone(),
        front: OperatorId(2),
    }];
    let fused = predict_vs_measure(&topo, None, &[], &fused_groups, 40_000, executor)?;
    println!(
        "measured: original {:.0} items/s, fused {:.0} items/s",
        plain.measured_throughput, fused.measured_throughput
    );
    println!(
        "model said fused topology runs at {:.0} items/s; measured {:.0} (error {:.1}%)",
        outcome.report.throughput.items_per_sec(),
        fused.measured_throughput,
        (outcome.report.throughput.items_per_sec() - fused.measured_throughput).abs()
            / fused.measured_throughput
            * 100.0
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = experiment_executor(7);
    // Table 1: fusion is feasible (F = 2.80 ms < the 3.33 ms inter-arrival
    // gap at its input).
    case(
        "Table 1 — fusion preserves throughput",
        [1.0, 1.2, 0.7, 2.0, 1.5, 0.2],
        &executor,
    )?;
    // Table 2: slower members; F = 4.42 ms becomes the bottleneck.
    case(
        "Table 2 — fusion introduces a bottleneck",
        [1.0, 1.2, 1.5, 2.7, 2.2, 0.2],
        &executor,
    )?;
    Ok(())
}
