//! One instance of the paper's §5 testbed, end to end: generate a random
//! topology (Algorithm 5), profile it, predict its steady state, execute
//! it, and compare — then do the same after bottleneck elimination.
//!
//! Run with `cargo run --example random_topology [SEED]`.

use spinstreams::analysis::{eliminate_bottlenecks, format_fission_plan, format_steady_state};
use spinstreams::runtime::Executor;
use spinstreams::tool::{comparison_table, items_for_duration, predict_vs_measure};
use spinstreams::topogen::{generate, TopogenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = TopogenConfig::default();
    let executor = Executor::default();

    println!("generating testbed topology for seed {seed}...");
    let generated = generate(seed, &cfg);
    let topo = &generated.topology;
    println!("{topo}");

    let report = spinstreams::analysis::steady_state(topo);
    println!("{}", format_steady_state(topo, &report));

    let items = items_for_duration(report.throughput.items_per_sec(), 4.0);
    let cmp = predict_vs_measure(
        topo,
        Some(&generated.source_keys),
        &[],
        &[],
        items,
        &executor,
    )?;
    println!("{}", comparison_table("initial topology", &cmp));

    let plan = eliminate_bottlenecks(topo);
    println!("{}", format_fission_plan(topo, &plan));
    let items = items_for_duration(plan.throughput.items_per_sec(), 4.0);
    let cmp = predict_vs_measure(
        topo,
        Some(&generated.source_keys),
        &plan.replicas,
        &[],
        items,
        &executor,
    )?;
    println!("{}", comparison_table("after bottleneck elimination", &cmp));

    if plan.ideal() {
        println!("all bottlenecks removed: the topology now sustains the source rate.");
    } else {
        println!(
            "residual bottlenecks remain ({} operators could not be parallelized).",
            plan.residual_bottlenecks.len()
        );
    }
    Ok(())
}
