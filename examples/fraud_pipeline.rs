//! A realistic domain scenario: card-transaction scoring.
//!
//! The topology mirrors the fraud-detection pipelines the paper's intro
//! motivates: a transaction feed fans out to a fast path (cheap rule
//! filter) and a slow path (windowed per-card statistics + quantile
//! scoring), converging on an alerting join. The per-card statistics are
//! *partitioned-stateful* — their state splits by card id — while the
//! band-join is monolithic stateful, so bottleneck elimination must combine
//! key-aware fission with residual-backpressure accounting.
//!
//! Run with `cargo run --example fraud_pipeline`.

use spinstreams::analysis::{
    eliminate_bottlenecks, format_fission_plan, format_steady_state, steady_state,
};
use spinstreams::core::{KeyDistribution, OperatorSpec, Selectivity, ServiceTime, Topology};
use spinstreams::runtime::Executor;
use spinstreams::tool::{calibrate, predict_vs_measure};

fn build() -> Result<(Topology, KeyDistribution), Box<dyn std::error::Error>> {
    // Card activity is skewed: a few cards transact much more than others.
    let cards = KeyDistribution::zipf(64, 1.2);

    let mut b = Topology::builder();
    let feed = b.add_operator(
        OperatorSpec::source("txn-feed", ServiceTime::from_micros(120.0)).with_kind("source"),
    );
    let dedup = b.add_operator(
        OperatorSpec::stateful("dedup", ServiceTime::from_micros(60.0))
            .with_kind("delta-filter")
            .with_param("epsilon", 0.0)
            .with_param("work_ns", 60_000.0),
    );
    let rules = b.add_operator(
        OperatorSpec::stateless("rule-filter", ServiceTime::from_micros(80.0))
            .with_kind("filter")
            .with_selectivity(Selectivity::output(0.6))
            .with_param("threshold", 0.6)
            .with_param("work_ns", 80_000.0),
    );
    let stats = b.add_operator(
        OperatorSpec::partitioned("card-stats", ServiceTime::from_micros(900.0), cards.clone())
            .with_kind("keyed-wma")
            .with_selectivity(Selectivity::input(4.0))
            .with_param("window", 32.0)
            .with_param("slide", 4.0)
            .with_param("work_ns", 900_000.0),
    );
    let quantile = b.add_operator(
        OperatorSpec::stateless("risk-score", ServiceTime::from_micros(300.0))
            .with_kind("arithmetic-map")
            .with_param("rounds", 16.0)
            .with_param("work_ns", 300_000.0),
    );
    let alert = b.add_operator(
        OperatorSpec::stateful("alert-join", ServiceTime::from_micros(150.0))
            .with_kind("band-join")
            .with_param("band", 0.05)
            .with_param("window", 32.0)
            .with_param("work_ns", 150_000.0),
    );
    b.add_edge(feed, dedup, 1.0)?;
    b.add_edge(dedup, rules, 0.7)?;
    b.add_edge(dedup, stats, 0.3)?;
    b.add_edge(rules, alert, 1.0)?;
    b.add_edge(stats, quantile, 1.0)?;
    b.add_edge(quantile, alert, 1.0)?;
    Ok((b.build()?, cards))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (topo, cards) = build()?;
    let executor = Executor::default();

    println!("--- fraud pipeline, as designed ---");
    println!("{topo}");

    // Profile the running application first (the paper's workflow): the
    // declared service times above are the designer's guesses; calibration
    // replaces them with measured ones.
    let calibrated = calibrate(&topo, Some(&cards), 30_000, 200, &executor)?;
    println!("--- after profiling (calibrated service times) ---");
    let report = steady_state(&calibrated);
    println!("{}", format_steady_state(&calibrated, &report));

    // Where do we land if we parallelize? Note the skew-limited fission of
    // card-stats and the unbreakable dedup/alert-join bottlenecks.
    let plan = eliminate_bottlenecks(&calibrated);
    println!("{}", format_fission_plan(&calibrated, &plan));

    let before = predict_vs_measure(&calibrated, Some(&cards), &[], &[], 30_000, &executor)?;
    println!(
        "original:     predicted {:>8.0} vs measured {:>8.0} items/s (error {:.1}%)",
        before.predicted_throughput,
        before.measured_throughput,
        before.relative_error() * 100.0
    );
    let after = predict_vs_measure(
        &calibrated,
        Some(&cards),
        &plan.replicas,
        &[],
        60_000,
        &executor,
    )?;
    println!(
        "parallelized: predicted {:>8.0} vs measured {:>8.0} items/s (error {:.1}%)",
        after.predicted_throughput,
        after.measured_throughput,
        after.relative_error() * 100.0
    );
    println!(
        "fission speedup: {:.2}x with {} additional replicas{}",
        after.measured_throughput / before.measured_throughput,
        plan.additional_replicas(),
        if plan.ideal() {
            String::new()
        } else {
            format!(
                " (residual bottlenecks: {:?})",
                plan.residual_bottlenecks
                    .iter()
                    .map(|id| calibrated.operator(*id).name.clone())
                    .collect::<Vec<_>>()
            )
        }
    );
    Ok(())
}
